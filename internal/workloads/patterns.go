// Package workloads builds the execution traces of the paper's case studies
// and benchmarks: the producer-consumer and data-streaming patterns of §2,
// the MySQL and vips case studies of §2.1 (Figs. 4-6), the selection sort of
// Fig. 10, and a parameterized suite of synthetic benchmark applications
// standing in for PARSEC 2.1 / SPEC OMP2012 / mysqlslap in the aggregate
// experiments (Figs. 11-16 and Table 1).
//
// Programmatic generators use trace.Builder directly (one operation = one
// basic block); the selection-sort and pattern programs are additionally
// available as MiniLang sources executed by the instrumented VM.
package workloads

import "aprof/internal/trace"

// ProducerConsumer builds the semaphore-based producer-consumer execution of
// Fig. 2: the producer writes location x, the consumer reads it, n times.
// After the run, rms(consumer) = 1 and drms(consumer) = n.
func ProducerConsumer(n int) *trace.Trace {
	const (
		x         = trace.Addr(100)
		semEmpty  = trace.Addr(0)
		semFull   = trace.Addr(1)
		semMutex  = trace.Addr(2)
		workUnits = 3
	)
	b := trace.NewBuilder()
	prod := b.Thread(1)
	cons := b.Thread(2)
	prod.Call("producer")
	cons.Call("consumer")
	for i := 0; i < n; i++ {
		prod.Acquire(semEmpty)
		prod.Acquire(semMutex)
		prod.Call("produceData")
		prod.Work(workUnits)
		prod.Write1(x)
		prod.Ret()
		prod.Release(semMutex)
		prod.Release(semFull)

		cons.Acquire(semFull)
		cons.Acquire(semMutex)
		cons.Call("consumeData")
		cons.Work(workUnits)
		cons.Read1(x)
		cons.Ret()
		cons.Release(semMutex)
		cons.Release(semEmpty)
	}
	prod.Ret()
	cons.Ret()
	return b.Trace()
}

// StreamReader builds the buffered data-stream execution of Fig. 3: the OS
// fills a buffer of bufSize cells n times; only b[0] is consumed. After the
// run, rms(streamReader) = 1 and drms(streamReader) = n.
func StreamReader(n, bufSize int) *trace.Trace {
	const buf = trace.Addr(500)
	b := trace.NewBuilder()
	tb := b.Thread(1)
	tb.Call("streamReader")
	for i := 0; i < n; i++ {
		tb.SysRead(buf, uint32(bufSize))
		tb.Call("consumeData")
		tb.Work(2)
		tb.Read1(buf)
		tb.Ret()
	}
	tb.Ret()
	return b.Trace()
}
