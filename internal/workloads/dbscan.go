package workloads

import "aprof/internal/trace"

// DBScanConfig parameterizes the MySQL case study of §2.1 (Fig. 4): a query
// that selects all tuples of a table, processed by routine mysql_select.
// Tuples are partitioned into groups; each group is loaded into a fixed
// kernel buffer through a system call and then read by mysql_select.
type DBScanConfig struct {
	// BufRows is the number of rows the kernel buffer holds (the paper's
	// observation is that the rms roughly coincides with the buffer size
	// regardless of the table size).
	BufRows int
	// RowCells is the number of memory cells per row.
	RowCells int
	// IndexFraction controls the per-query B-tree/index metadata scanned
	// outside the buffer: indexCells = rows/IndexFraction. This is what
	// makes the rms grow slightly with the table (14→17×10^6 in the paper)
	// while the cost grows linearly — the source of the false superlinear
	// rms trend.
	IndexFraction int
	// WorkPerRow is the basic-block cost of processing one row.
	WorkPerRow int
}

// DefaultDBScanConfig mirrors the shape of the paper's experiment.
func DefaultDBScanConfig() DBScanConfig {
	return DBScanConfig{
		BufRows:       64,
		RowCells:      4,
		IndexFraction: 24,
		WorkPerRow:    6,
	}
}

// DBScan builds the trace of one server run executing a full-table scan for
// each table size in tableRows. Every query activates mysql_select, which
// repeatedly refills the kernel buffer (kernelToUser events) and reads the
// buffered rows; the buffer cells are reused across groups, so the rms of an
// activation stays near the buffer size while the drms counts every buffered
// row — exactly the Fig. 4 scenario.
func DBScan(tableRows []int, cfg DBScanConfig) *trace.Trace {
	b := trace.NewBuilder()
	tb := b.Thread(1)

	// Address layout: the kernel buffer, the query structure, then a
	// per-run index region large enough for the biggest table.
	bufCells := cfg.BufRows * cfg.RowCells
	const bufBase = trace.Addr(1 << 16)
	indexBase := bufBase + trace.Addr(bufCells)

	tb.Call("mysqld")
	for _, rows := range tableRows {
		tb.Call("mysql_select")

		// Scan the table index: private (thread-local) metadata reads that
		// count toward both rms and drms.
		indexCells := rows / cfg.IndexFraction
		for c := 0; c < indexCells; c++ {
			tb.Read1(indexBase + trace.Addr(c))
		}
		tb.Work(uint64(indexCells))

		// Scan the table in buffer-sized groups.
		for done := 0; done < rows; done += cfg.BufRows {
			group := min(cfg.BufRows, rows-done)
			groupCells := group * cfg.RowCells
			tb.SysRead(bufBase, uint32(groupCells))
			for r := 0; r < group; r++ {
				rowAddr := bufBase + trace.Addr(r*cfg.RowCells)
				tb.Read(rowAddr, uint32(cfg.RowCells))
				tb.Work(uint64(cfg.WorkPerRow))
			}
		}
		tb.Ret()
	}
	tb.Ret()
	return b.Trace()
}
