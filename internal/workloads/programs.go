package workloads

import (
	"fmt"

	"aprof/internal/trace"
	"aprof/internal/vm"
)

// VMProgram is a complete multithreaded MiniLang application together with
// the dynamic-workload characterization it must exhibit. Unlike the
// programmatic suite (suite.go), these workloads are *real programs* run by
// the instrumented VM: scheduling, semaphore blocking and kernel I/O all
// happen inside the interpreter, so the traces exercise the full
// Valgrind-substitute path end to end.
type VMProgram struct {
	Name   string
	Source string
	// WantOutput is the program's full expected output.
	WantOutput []string
	// MinThreadInputPct / MinExternalInputPct are lower bounds on the
	// run-level induced first-read split.
	MinThreadInputPct   float64
	MinExternalInputPct float64
	// HotRoutine names a routine whose drms must exceed its rms by at least
	// DynamicFactor (the dynamic workload the rms misses).
	HotRoutine    string
	DynamicFactor float64
}

// VMPrograms returns the application collection.
func VMPrograms() []VMProgram {
	return []VMProgram{
		{
			// A two-stage pipeline: a producer feeds raw items through a
			// one-slot buffer to a filter, which feeds accepted items to a
			// consumer. All input of the downstream stages is thread input.
			Name: "pipeline",
			Source: `
global raw = 0;
global cooked = 0;

fn produce(n, rawFree, rawFull) {
	for (var i = 1; i <= n; i = i + 1) {
		wait(rawFree);
		raw = i * 7 % 100;
		signal(rawFull);
	}
}

fn filter(n, rawFree, rawFull, cookedFree, cookedFull) {
	var kept = 0;
	for (var i = 0; i < n; i = i + 1) {
		wait(rawFull);
		var v = raw;
		signal(rawFree);
		wait(cookedFree);
		cooked = v * 2;
		signal(cookedFull);
		kept = kept + 1;
	}
	assert(kept == n);
}

fn consume(n, cookedFree, cookedFull) {
	var sum = 0;
	for (var i = 0; i < n; i = i + 1) {
		wait(cookedFull);
		sum = sum + cooked;
		signal(cookedFree);
	}
	print("consumed:", sum);
}

fn main() {
	var n = 300;
	var rawFree = sem(1);
	var rawFull = sem(0);
	var cookedFree = sem(1);
	var cookedFull = sem(0);
	spawn produce(n, rawFree, rawFull);
	spawn filter(n, rawFree, rawFull, cookedFree, cookedFull);
	consume(n, cookedFree, cookedFull);
}`,
			WantOutput:        []string{"consumed: 29700"},
			MinThreadInputPct: 95,
			HotRoutine:        "consume",
			DynamicFactor:     50,
		},
		{
			// A request server: the network (sysread) delivers requests into
			// a reused buffer; worker threads process them and publish
			// responses through shared cells.
			Name: "server",
			Source: `
global reqbuf[8];
global resp = 0;

fn handle(req) {
	var acc = 0;
	for (var i = 0; i < req % 16 + 1; i = i + 1) {
		acc = acc + i * req;
	}
	return acc;
}

fn worker(n, reqReady, respReady) {
	for (var i = 0; i < n; i = i + 1) {
		wait(reqReady);
		resp = handle(reqbuf[0] % 97);
		signal(respReady);
	}
}

fn accept_loop(n, reqReady, respReady) {
	var total = 0;
	for (var i = 0; i < n; i = i + 1) {
		sysread(reqbuf, 8);     // a fresh request from the network
		signal(reqReady);
		wait(respReady);
		total = total + resp;
		syswrite(reqbuf, 1);    // echo part of the response out
	}
	print("served/checksum:", n, total % 1000000);
}

fn main() {
	var n = 200;
	var reqReady = sem(0);
	var respReady = sem(0);
	spawn worker(n, reqReady, respReady);
	accept_loop(n, reqReady, respReady);
}`,
			WantOutput:          []string{"served/checksum: 200 423666"},
			MinExternalInputPct: 55,
			HotRoutine:          "accept_loop",
			DynamicFactor:       50,
		},
		{
			// Iterative fork-join refinement: each round, workers rewrite
			// their slices of a shared array and a reducer folds the whole
			// array. The reducer reads the same 512 cells every round, so
			// its rms stays one array while its drms counts every
			// thread-produced refresh — the dynamic workload the rms
			// misses.
			Name: "mapreduce",
			Source: `
global data[512];

fn mapper(base, n, round, startSem, doneSem) {
	wait(startSem);
	for (var i = 0; i < n; i = i + 1) {
		data[base + i] = (base + i + round * 13) % 251;
	}
	signal(doneSem);
}

fn map_round(round, parts, chunk, startSems, doneSem) {
	for (var p = 0; p < parts; p = p + 1) {
		spawn mapper(p * chunk, chunk, round, startSems, doneSem);
	}
	for (var p = 0; p < parts; p = p + 1) {
		signal(startSems);
	}
	for (var p = 0; p < parts; p = p + 1) {
		wait(doneSem);
	}
	return 0;
}

fn reduce(n) {
	var sum = 0;
	for (var i = 0; i < n; i = i + 1) {
		sum = sum + data[i];
	}
	return sum;
}

fn main() {
	var parts = 4;
	var chunk = 128;
	var rounds = 8;
	var startSems = sem(0);
	var doneSem = sem(0);
	var total = 0;
	for (var r = 0; r < rounds; r = r + 1) {
		map_round(r, parts, chunk, startSems, doneSem);
		total = total + reduce(parts * chunk);
	}
	print("reduced:", total);
}`,
			WantOutput:        []string{"reduced: 506000"},
			MinThreadInputPct: 95,
			HotRoutine:        "main",
			DynamicFactor:     6,
		},
		{
			// A single-threaded unrolled stencil pass: each smooth() body is
			// one straight-line basic block whose neighboring reads overlap
			// and whose result cells are re-read for the checksum — the
			// workload shape where instrumentation redundancy suppression
			// (vm.Options.Suppress) elides the most events. No threads, no
			// I/O: drms equals rms here (DynamicFactor 1).
			Name: "stencil",
			Source: `
global grid[72];
global out[72];

fn smooth(base) {
	out[base] = grid[base] + grid[base + 1];
	out[base + 1] = grid[base + 1] + grid[base + 2];
	out[base + 2] = grid[base + 2] + grid[base + 3];
	out[base + 3] = grid[base + 3] + grid[base + 4];
	out[base + 4] = grid[base + 4] + grid[base + 5];
	out[base + 5] = grid[base + 5] + grid[base + 6];
	out[base + 6] = grid[base + 6] + grid[base + 7];
	out[base + 7] = grid[base + 7] + grid[base + 8];
	return out[base] + out[base + 1] + out[base + 2] + out[base + 3]
		+ out[base + 4] + out[base + 5] + out[base + 6] + out[base + 7];
}

fn main() {
	for (var i = 0; i < 72; i = i + 1) {
		grid[i] = i * 5 % 11;
	}
	var total = 0;
	for (var round = 0; round < 6; round = round + 1) {
		for (var p = 0; p < 8; p = p + 1) {
			total = total + smooth(p * 8);
		}
	}
	print("smoothed:", total);
}`,
			WantOutput:    []string{"smoothed: 3882"},
			HotRoutine:    "smooth",
			DynamicFactor: 1,
		},
		{
			// An unrolled self-dot-product: every cell is read twice per
			// block (x·x), so half the reads in each dot8 body are provably
			// redundant. Single-threaded and I/O-free like stencil.
			Name: "vecnorm",
			Source: `
global vec[64];

fn dot8(i) {
	return vec[i] * vec[i]
		+ vec[i + 1] * vec[i + 1]
		+ vec[i + 2] * vec[i + 2]
		+ vec[i + 3] * vec[i + 3]
		+ vec[i + 4] * vec[i + 4]
		+ vec[i + 5] * vec[i + 5]
		+ vec[i + 6] * vec[i + 6]
		+ vec[i + 7] * vec[i + 7];
}

fn main() {
	for (var i = 0; i < 64; i = i + 1) {
		vec[i] = i % 9 - 4;
	}
	var norm = 0;
	for (var round = 0; round < 8; round = round + 1) {
		for (var b = 0; b < 8; b = b + 1) {
			norm = norm + dot8(b * 8);
		}
	}
	print("norm:", norm);
}`,
			WantOutput:    []string{"norm: 3488"},
			HotRoutine:    "dot8",
			DynamicFactor: 1,
		},
	}
}

// BuildTrace runs the program under the instrumented VM and verifies its
// output.
func (p VMProgram) BuildTrace() (*trace.Trace, error) {
	res, err := vm.RunSource(p.Source, vm.Options{})
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", p.Name, err)
	}
	if len(res.Output) != len(p.WantOutput) {
		return nil, fmt.Errorf("workloads: %s: output %v, want %v", p.Name, res.Output, p.WantOutput)
	}
	for i := range p.WantOutput {
		if res.Output[i] != p.WantOutput[i] {
			return nil, fmt.Errorf("workloads: %s: output %v, want %v", p.Name, res.Output, p.WantOutput)
		}
	}
	return res.Trace, nil
}
