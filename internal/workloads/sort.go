package workloads

import (
	"fmt"
	"math/rand"
	"time"

	"aprof/internal/trace"
	"aprof/internal/vm"
)

// SelectionSortProgram is the MiniLang selection sort of Fig. 10, run by the
// instrumented VM. Each invocation of selection_sort receives an array of a
// different size, so the profiler observes one performance point per size
// and the cost plot exposes the quadratic trend.
const SelectionSortProgram = `
// Selection sort under the instrumented VM (Fig. 10).
global sizes[%d];

fn selection_sort(a, n) {
	for (var i = 0; i < n - 1; i = i + 1) {
		var best = i;
		for (var j = i + 1; j < n; j = j + 1) {
			if (a[j] < a[best]) {
				best = j;
			}
		}
		var tmp = a[i];
		a[i] = a[best];
		a[best] = tmp;
	}
	return 0;
}

fn fill_reverse(a, n) {
	for (var i = 0; i < n; i = i + 1) {
		a[i] = n - i;
	}
	return 0;
}

fn check_sorted(a, n) {
	for (var i = 1; i < n; i = i + 1) {
		if (a[i - 1] > a[i]) {
			print("unsorted at", i);
			return 1;
		}
	}
	return 0;
}

fn main() {
%s
	var bad = 0;
	for (var k = 0; k < %d; k = k + 1) {
		var n = sizes[k];
		var a = alloc(n);
		fill_reverse(a, n);
		selection_sort(a, n);
		bad = bad + check_sorted(a, n);
	}
	print("bad:", bad);
}
`

// SelectionSortVM runs selection sort over the given input sizes in the
// instrumented VM and returns the merged trace (cost measured in executed
// basic blocks — the left plot of Fig. 10).
func SelectionSortVM(sizes []int) (*trace.Trace, error) {
	var fills string
	for i, n := range sizes {
		fills += fmt.Sprintf("\tsizes[%d] = %d;\n", i, n)
	}
	src := fmt.Sprintf(SelectionSortProgram, len(sizes), fills, len(sizes))
	res, err := vm.RunSource(src, vm.Options{})
	if err != nil {
		return nil, fmt.Errorf("workloads: selection sort VM run: %w", err)
	}
	if len(res.Output) != 1 || res.Output[0] != "bad: 0" {
		return nil, fmt.Errorf("workloads: selection sort produced unsorted output: %v", res.Output)
	}
	return res.Trace, nil
}

// TimedPoint is one wall-clock measurement of a native selection sort run:
// the input size and the observed duration in nanoseconds (the right plot of
// Fig. 10, where timing noise blurs the trend that basic-block counting
// shows cleanly).
type TimedPoint struct {
	N  int
	NS int64
}

// SelectionSortTimed runs a native Go selection sort over each input size,
// repeats times, and returns every wall-clock measurement.
func SelectionSortTimed(sizes []int, repeats int) []TimedPoint {
	rng := rand.New(rand.NewSource(42))
	var out []TimedPoint
	for _, n := range sizes {
		for r := 0; r < repeats; r++ {
			a := make([]int, n)
			for i := range a {
				a[i] = rng.Int()
			}
			start := time.Now()
			selectionSort(a)
			out = append(out, TimedPoint{N: n, NS: time.Since(start).Nanoseconds()})
		}
	}
	return out
}

func selectionSort(a []int) {
	for i := 0; i < len(a)-1; i++ {
		best := i
		for j := i + 1; j < len(a); j++ {
			if a[j] < a[best] {
				best = j
			}
		}
		a[i], a[best] = a[best], a[i]
	}
}
