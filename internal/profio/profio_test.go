package profio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"aprof/internal/core"
	"aprof/internal/workloads"
)

func sampleProfiles(t *testing.T) *core.Profiles {
	t.Helper()
	ps, err := core.Run(workloads.ProducerConsumer(20), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestRoundTrip(t *testing.T) {
	ps := sampleProfiles(t)
	var buf bytes.Buffer
	if err := Write(&buf, ps); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Events != ps.Events || got.Renumberings != ps.Renumberings {
		t.Errorf("run counters changed: %d/%d vs %d/%d", got.Events, got.Renumberings, ps.Events, ps.Renumberings)
	}
	if len(got.ByKey) != len(ps.ByKey) {
		t.Fatalf("profile count %d, want %d", len(got.ByKey), len(ps.ByKey))
	}
	for k, orig := range ps.ByKey {
		name := ps.Symbols.Name(k.Routine)
		restored := got.Get(name, k.Thread)
		if restored == nil {
			t.Fatalf("missing profile %q thread %d", name, k.Thread)
		}
		if restored.Calls != orig.Calls || restored.SumRMS != orig.SumRMS || restored.SumDRMS != orig.SumDRMS ||
			restored.FirstReads != orig.FirstReads || restored.InducedThread != orig.InducedThread ||
			restored.InducedExternal != orig.InducedExternal || restored.TotalCost != orig.TotalCost {
			t.Errorf("%q/%d: scalar fields changed", name, k.Thread)
		}
		if !reflect.DeepEqual(restored.DRMSPoints, orig.DRMSPoints) {
			t.Errorf("%q/%d: drms points changed", name, k.Thread)
		}
		if !reflect.DeepEqual(restored.RMSPoints, orig.RMSPoints) {
			t.Errorf("%q/%d: rms points changed", name, k.Thread)
		}
	}
	// Plots derived from the restored profiles match.
	origPlot := ps.Routine("consumer").WorstCasePlot(core.MetricDRMS)
	gotPlot := got.Routine("consumer").WorstCasePlot(core.MetricDRMS)
	if !reflect.DeepEqual(origPlot, gotPlot) {
		t.Error("worst-case plot changed across round trip")
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"garbage", "not json"},
		{"bad format", `{"format": 99, "profiles": []}`},
		{"unknown field", `{"format": 1, "bogus": 1, "profiles": []}`},
		{"duplicate profile", `{"format":1,"generator":"x","events":0,"renumberings":0,"profiles":[
			{"routine":"f","thread":1,"calls":1,"sum_rms":0,"sum_drms":0,"first_reads":0,"induced_thread":0,"induced_external":0,"total_cost":0,"drms_points":[],"rms_points":[]},
			{"routine":"f","thread":1,"calls":1,"sum_rms":0,"sum_drms":0,"first_reads":0,"induced_thread":0,"induced_external":0,"total_cost":0,"drms_points":[],"rms_points":[]}]}`},
		{"duplicate point", `{"format":1,"generator":"x","events":0,"renumberings":0,"profiles":[
			{"routine":"f","thread":1,"calls":1,"sum_rms":0,"sum_drms":0,"first_reads":0,"induced_thread":0,"induced_external":0,"total_cost":0,
			 "drms_points":[{"n":1,"count":1,"max":1,"min":1,"sum":1,"sumsq":1},{"n":1,"count":1,"max":1,"min":1,"sum":1,"sumsq":1}],"rms_points":[]}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tc.src)); err == nil {
				t.Error("Read accepted malformed input")
			}
		})
	}
}

func TestWriteIsDeterministic(t *testing.T) {
	ps := sampleProfiles(t)
	var a, b bytes.Buffer
	if err := Write(&a, ps); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, ps); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two writes of the same profiles differ")
	}
	if !strings.Contains(a.String(), `"routine": "consumer"`) {
		t.Error("output missing expected routine")
	}
}

func TestMetricsSurviveRoundTrip(t *testing.T) {
	ps := sampleProfiles(t)
	var buf bytes.Buffer
	if err := Write(&buf, ps); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := ps.Routine("consumer")
	rest := got.Routine("consumer")
	if orig.InducedReads() != rest.InducedReads() || orig.ReadOps() != rest.ReadOps() {
		t.Error("derived metrics changed across round trip")
	}
	if _, ok := got.Symbols.Lookup("producer"); !ok {
		t.Error("symbol table incomplete after round trip")
	}
}
