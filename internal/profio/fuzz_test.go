package profio

import (
	"bytes"
	"io"
	"testing"

	"aprof/internal/core"
	"aprof/internal/trace"
)

// FuzzReadProfiles fuzzes the profile-file decoder: arbitrary bytes must be
// decoded or rejected with an error — never a panic — and any document that
// decodes must re-encode cleanly (Read's output is always writable).
func FuzzReadProfiles(f *testing.F) {
	for _, seed := range []int64{1, 2} {
		tr := trace.Random(trace.RandomConfig{Seed: seed, Ops: 150})
		ps, err := core.Run(tr, core.DefaultConfig())
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, ps); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"format":1,"generator":"aprof-drms","events":0,"renumberings":0,"profiles":[]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := Write(io.Discard, ps); err != nil {
			t.Fatalf("decoded profiles failed to re-encode: %v", err)
		}
	})
}
