package profio

// Benchmark-driven bound on the observability layer's cost: ProfileStream
// with a live registry must stay within 5% ns/op of the uninstrumented run
// (ISSUE 4 acceptance criterion). The hot path pays one nil check plus one
// uncontended atomic add per event; everything state-derived is published at
// batch boundaries, so the bound holds with a wide margin — the 5% band
// mostly absorbs scheduler noise.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"aprof/internal/core"
	"aprof/internal/obs"
	"aprof/internal/trace"
)

func TestObsOverheadBound(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-driven; skipped with -short")
	}
	if raceEnabled {
		t.Skip("race detector instruments every atomic op; timing bound not meaningful")
	}
	tr := trace.Random(trace.RandomConfig{Seed: 2, Ops: 20000})
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	run := func(cfg core.Config) time.Duration {
		start := time.Now()
		ps, err := ProfileStream(context.Background(), bytes.NewReader(data), cfg, StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if ps.Events == 0 {
			t.Fatal("empty profiles")
		}
		return time.Since(start)
	}

	instrCfg := core.DefaultConfig()
	instrCfg.Obs = obs.NewRegistry()

	// Noise-robust estimator: one ProfileStream run takes ~4ms, so instead
	// of a few long testing.Benchmark passes (where one load spike poisons a
	// whole pass) we take the minimum over many short strictly-alternating
	// runs — each configuration gets ~150 chances to hit a quiet scheduler
	// window, and alternation spreads any sustained machine load evenly
	// across both.
	const rounds = 150
	for i := 0; i < 5; i++ { // warmup
		run(core.DefaultConfig())
		run(instrCfg)
	}
	bare, instr := time.Duration(-1), time.Duration(-1)
	for i := 0; i < rounds; i++ {
		if d := run(core.DefaultConfig()); bare < 0 || d < bare {
			bare = d
		}
		if d := run(instrCfg); instr < 0 || d < instr {
			instr = d
		}
	}

	overhead := (float64(instr) - float64(bare)) / float64(bare) * 100
	t.Logf("ProfileStream min over %d runs: bare=%v instrumented=%v overhead=%+.2f%%", rounds, bare, instr, overhead)
	if overhead > 5 {
		t.Errorf("observability overhead %.2f%% exceeds the 5%% bound (bare %v, instrumented %v)",
			overhead, bare, instr)
	}
}
