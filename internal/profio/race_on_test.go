//go:build race

package profio

// raceEnabled reports that this build runs under the race detector, whose
// per-atomic-op instrumentation invalidates timing assertions.
const raceEnabled = true
