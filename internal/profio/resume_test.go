package profio

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"aprof/internal/core"
	"aprof/internal/trace"
)

// errKill is the injected crash of the resume tests.
var errKill = errors.New("injected crash")

// TestKillAndResumeDeterminism is the acceptance test of the checkpoint
// mechanism: for several batch sizes, interrupting ProfileStream after
// EVERY possible batch and resuming from the checkpoint must produce
// WriteProfiles output byte-identical to the uninterrupted run.
func TestKillAndResumeDeterminism(t *testing.T) {
	tr := trace.Random(trace.RandomConfig{Seed: 20, Ops: 1500})
	enc := encodeTrace(t, tr)
	cfg := core.DefaultConfig()

	for _, batchSize := range []int{32, 257, 1024} {
		opts := StreamOptions{BatchSize: batchSize, CheckpointEvery: 1}
		want, err := ProfileStream(context.Background(), bytes.NewReader(enc), cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		wantBytes := writeBytes(t, want)

		// Count the batches of an uninterrupted run.
		batches := (tr.Len() + batchSize - 1) / batchSize
		if batches < 2 {
			t.Fatalf("batch size %d: trace too small for a meaningful sweep", batchSize)
		}
		ckpt := filepath.Join(t.TempDir(), "ckpt")
		for kill := 1; kill <= batches; kill++ {
			kopts := opts
			kopts.CheckpointPath = ckpt
			kopts.OnBatch = func(batch int, delivered uint64) error {
				if batch == kill {
					return errKill
				}
				return nil
			}
			_, err := ProfileStream(context.Background(), bytes.NewReader(enc), cfg, kopts)
			if kill < batches && !errors.Is(err, errKill) {
				t.Fatalf("batch %d/%d: kill not delivered: %v", kill, batches, err)
			}
			if kill == batches && err != nil && !errors.Is(err, errKill) {
				t.Fatalf("batch %d/%d: %v", kill, batches, err)
			}
			if err == nil {
				// The run completed before the kill batch (final short
				// batch); nothing to resume.
				continue
			}
			ropts := opts
			ropts.CheckpointPath = ckpt
			got, err := ResumeStream(context.Background(), bytes.NewReader(enc), ckpt, cfg, ropts)
			if err != nil {
				t.Fatalf("resume after batch %d (size %d): %v", kill, batchSize, err)
			}
			if !bytes.Equal(writeBytes(t, got), wantBytes) {
				t.Fatalf("batch size %d, killed after batch %d: resumed output differs", batchSize, kill)
			}
		}
	}
}

// TestDoubleKillResume crashes, resumes, crashes again, and resumes again:
// checkpoints taken by a resumed run must themselves be resumable.
func TestDoubleKillResume(t *testing.T) {
	tr := trace.Random(trace.RandomConfig{Seed: 21, Ops: 2000})
	enc := encodeTrace(t, tr)
	cfg := core.DefaultConfig()
	opts := StreamOptions{BatchSize: 64, CheckpointEvery: 1}

	want, err := ProfileStream(context.Background(), bytes.NewReader(enc), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "ckpt")

	kill := func(run func(StreamOptions) (*core.Profiles, error), at int) {
		t.Helper()
		kopts := opts
		kopts.CheckpointPath = ckpt
		kopts.OnBatch = func(batch int, delivered uint64) error {
			if batch == at {
				return errKill
			}
			return nil
		}
		if _, err := run(kopts); !errors.Is(err, errKill) {
			t.Fatalf("kill not delivered: %v", err)
		}
	}
	kill(func(o StreamOptions) (*core.Profiles, error) {
		return ProfileStream(context.Background(), bytes.NewReader(enc), cfg, o)
	}, 7)
	kill(func(o StreamOptions) (*core.Profiles, error) {
		return ResumeStream(context.Background(), bytes.NewReader(enc), ckpt, cfg, o)
	}, 5)
	ropts := opts
	ropts.CheckpointPath = ckpt
	got, err := ResumeStream(context.Background(), bytes.NewReader(enc), ckpt, cfg, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(writeBytes(t, got), writeBytes(t, want)) {
		t.Error("twice-resumed output differs from uninterrupted run")
	}
}

// TestResumeRejectsWrongTrace checks the symbol-table guard.
func TestResumeRejectsWrongTrace(t *testing.T) {
	tr := trace.Random(trace.RandomConfig{Seed: 22, Ops: 500})
	enc := encodeTrace(t, tr)
	cfg := core.DefaultConfig()
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	opts := StreamOptions{BatchSize: 32, CheckpointEvery: 1, CheckpointPath: ckpt,
		OnBatch: func(batch int, _ uint64) error {
			if batch == 3 {
				return errKill
			}
			return nil
		}}
	if _, err := ProfileStream(context.Background(), bytes.NewReader(enc), cfg, opts); !errors.Is(err, errKill) {
		t.Fatal(err)
	}
	other := trace.Random(trace.RandomConfig{Seed: 23, Ops: 500, Routines: 9})
	otherEnc := encodeTrace(t, other)
	if _, err := ResumeStream(context.Background(), bytes.NewReader(otherEnc), ckpt, cfg, StreamOptions{}); err == nil {
		t.Error("resume against a different trace succeeded")
	}
	// A torn checkpoint must also be rejected.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeStream(context.Background(), bytes.NewReader(enc), ckpt, cfg, StreamOptions{}); err == nil {
		t.Error("resume from a torn checkpoint succeeded")
	}
}
