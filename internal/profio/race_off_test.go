//go:build !race

package profio

const raceEnabled = false
