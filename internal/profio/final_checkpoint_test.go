package profio

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aprof/internal/core"
	"aprof/internal/trace"
)

// TestFinalCheckpointOnAbort checks the drain path of the daemon: a run
// interrupted by an OnBatch abort with FinalCheckpoint set must leave a
// checkpoint at the *last profiled batch* (not the last periodic cadence
// point), and resuming from it must be byte-identical to a clean run.
func TestFinalCheckpointOnAbort(t *testing.T) {
	tr := trace.Random(trace.RandomConfig{Seed: 71, Ops: 1200})
	enc := encodeTrace(t, tr)
	cfg := core.DefaultConfig()

	want, err := ProfileStream(context.Background(), bytes.NewReader(enc), cfg, StreamOptions{BatchSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := writeBytes(t, want)

	ckpt := filepath.Join(t.TempDir(), "ckpt")
	opts := StreamOptions{
		BatchSize:       128,
		CheckpointPath:  ckpt,
		CheckpointEvery: 1 << 20, // periodic checkpoints effectively off
		FinalCheckpoint: true,
	}
	var lastDelivered uint64
	opts.OnBatch = func(batch int, delivered uint64) error {
		lastDelivered = delivered
		if batch == 3 {
			return errKill
		}
		return nil
	}
	if _, err := ProfileStream(context.Background(), bytes.NewReader(enc), cfg, opts); !errors.Is(err, errKill) {
		t.Fatalf("abort not delivered: %v", err)
	}

	// The final checkpoint must reflect exactly the last profiled batch.
	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatalf("final checkpoint not written: %v", err)
	}
	state, err := core.ReadCheckpointState(f, cfg)
	f.Close()
	if err != nil {
		t.Fatalf("reading final checkpoint state: %v", err)
	}
	if state.EventsDelivered != lastDelivered {
		t.Fatalf("checkpoint at %d events, want last batch at %d", state.EventsDelivered, lastDelivered)
	}

	got, err := ResumeStream(context.Background(), bytes.NewReader(enc), ckpt, cfg, StreamOptions{BatchSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(writeBytes(t, got), wantBytes) {
		t.Error("resume from final checkpoint diverges from uninterrupted run")
	}
}

// TestFinalCheckpointOnCancel covers SIGINT handling in cmd/aprof: context
// cancellation must produce a resumable final checkpoint.
func TestFinalCheckpointOnCancel(t *testing.T) {
	tr := trace.Random(trace.RandomConfig{Seed: 72, Ops: 1200})
	enc := encodeTrace(t, tr)
	cfg := core.DefaultConfig()

	want, err := ProfileStream(context.Background(), bytes.NewReader(enc), cfg, StreamOptions{BatchSize: 128})
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	opts := StreamOptions{
		BatchSize:       128,
		CheckpointPath:  ckpt,
		CheckpointEvery: 1 << 20,
		FinalCheckpoint: true,
		OnBatch: func(batch int, delivered uint64) error {
			if batch == 2 {
				cancel()
			}
			return nil
		},
	}
	_, err = ProfileStream(ctx, bytes.NewReader(enc), cfg, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation not delivered: %v", err)
	}
	got, err := ResumeStream(context.Background(), bytes.NewReader(enc), ckpt, cfg, StreamOptions{BatchSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(writeBytes(t, got), writeBytes(t, want)) {
		t.Error("resume from cancel checkpoint diverges from uninterrupted run")
	}
}

// TestNoFinalCheckpointAfterProfilerFailure: a profiler that failed
// mid-batch is not at a batch boundary; checkpointing it would be silent
// corruption. The option must refuse, leaving no file behind.
func TestNoFinalCheckpointAfterProfilerFailure(t *testing.T) {
	// A return without a matching call fails the profiler mid-batch.
	b := trace.NewBuilder()
	th := b.Thread(1)
	th.Call("main")
	th.Ret()
	tr := b.Trace()
	last := tr.Events[len(tr.Events)-1].Time
	tr.Events = append(tr.Events,
		trace.Event{Kind: trace.KindReturn, Thread: 1, Time: last + 1},
		trace.Event{Kind: trace.KindReturn, Thread: 1, Time: last + 2})
	enc := encodeTrace(t, tr)

	ckpt := filepath.Join(t.TempDir(), "ckpt")
	opts := StreamOptions{CheckpointPath: ckpt, FinalCheckpoint: true, CheckpointEvery: 1 << 20}
	if _, err := ProfileStream(context.Background(), bytes.NewReader(enc), core.DefaultConfig(), opts); err == nil {
		t.Fatal("malformed trace accepted")
	}
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("checkpoint written for a mid-batch profiler failure (stat: %v)", err)
	}
}

// panicAfterReader panics inside Read once n bytes have been delivered —
// the worst-case misbehaving source for a long-running daemon.
type panicAfterReader struct {
	r io.Reader
	n int
}

func (p *panicAfterReader) Read(b []byte) (int, error) {
	if p.n <= 0 {
		panic("injected source panic")
	}
	if len(b) > p.n {
		b = b[:p.n]
	}
	n, err := p.r.Read(b)
	p.n -= n
	return n, err
}

// TestDecoderPanicIsContained: a panic inside the decoder goroutine must
// surface as an ordinary stream error, not crash the process.
func TestDecoderPanicIsContained(t *testing.T) {
	tr := trace.Random(trace.RandomConfig{Seed: 73, Ops: 2000})
	enc := encodeTrace(t, tr)

	src := &panicAfterReader{r: bytes.NewReader(enc), n: len(enc) / 2}
	_, err := ProfileStream(context.Background(), src, core.DefaultConfig(), StreamOptions{BatchSize: 64})
	if err == nil || !strings.Contains(err.Error(), "decoder panic") {
		t.Fatalf("panic not converted to error: %v", err)
	}
}
