package profio

// Pipelined trace ingestion. Profiling a binary trace is a two-stage job:
// decoding and validating events (pure, per-event independent work) and the
// timestamping algorithm itself (inherently serial — it consumes a totally
// ordered trace, Figs. 8/9 of the paper). The stages are connected by a
// bounded channel of reusable event batches, so decoding the next batch
// overlaps with profiling the current one and the steady state allocates
// nothing: the same Depth+1 batch buffers circulate between a free list and
// the full queue for the whole run. Because the profiler still handles every
// event in exact trace order, the resulting Profiles are identical — byte
// for byte under Write — to the sequential path.

import (
	"context"
	"io"

	"aprof/internal/core"
	"aprof/internal/trace"
)

// DefaultBatchSize is the default number of events per pipeline batch:
// large enough to amortize channel synchronization over thousands of
// events, small enough that two buffers stay cache-resident.
const DefaultBatchSize = 4096

// StreamOptions tunes the staged pipeline of ProfileStream.
type StreamOptions struct {
	// BatchSize is the number of decoded events handed to the profiler at a
	// time (default DefaultBatchSize).
	BatchSize int
	// Depth is the capacity of the batch channel between the decoder and
	// the profiler (default 2: one batch being profiled, one in flight,
	// one being filled — double buffering with a one-batch cushion).
	Depth int
}

// ProfileStream profiles a binary trace incrementally from r through a
// staged pipeline: a decoder goroutine parses and validates events into
// reusable batches and hands them to the (serial) profiler stage over a
// bounded channel. Trace files far larger than memory can be profiled; the
// profiler's state is bounded by the traced program's footprint, not the
// trace length.
//
// Cancelling ctx aborts the run between batches (a decoder blocked inside
// r.Read is not interrupted). The first error wins: a profiler error is
// reported even when the decoder subsequently fails or is cancelled, and
// vice versa.
func ProfileStream(ctx context.Context, r io.Reader, cfg core.Config, opts StreamOptions) (*core.Profiles, error) {
	br, err := trace.NewBinaryReader(r)
	if err != nil {
		return nil, err
	}
	p := core.NewProfiler(br.Symbols(), cfg)

	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	depth := opts.Depth
	if depth <= 0 {
		depth = 2
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// full carries decoded batches to the profiler; free returns consumed
	// buffers to the decoder. depth+1 buffers circulate, so the free send
	// below never blocks and the decoder only ever waits on full.
	full := make(chan []trace.Event, depth)
	free := make(chan []trace.Event, depth+1)
	for i := 0; i < depth+1; i++ {
		free <- make([]trace.Event, 0, batchSize)
	}
	// decodeDone carries the decoder stage's terminal status (nil on clean
	// EOF); buffered so the decoder never blocks on it.
	decodeDone := make(chan error, 1)

	go func() {
		defer close(full)
		for {
			var batch []trace.Event
			select {
			case batch = <-free:
			case <-ctx.Done():
				decodeDone <- ctx.Err()
				return
			}
			batch = batch[:0]
			var decodeErr error
			for len(batch) < batchSize {
				batch = batch[:len(batch)+1]
				ok, err := br.Next(&batch[len(batch)-1])
				if err != nil || !ok {
					batch = batch[:len(batch)-1]
					decodeErr = err
					break
				}
			}
			if len(batch) > 0 {
				select {
				case full <- batch:
				case <-ctx.Done():
					decodeDone <- ctx.Err()
					return
				}
			}
			if decodeErr != nil || len(batch) < batchSize {
				// Error or end of trace (a short batch means br.Next
				// reported !ok).
				decodeDone <- decodeErr
				return
			}
		}
	}()

	var profileErr error
	for batch := range full {
		if profileErr == nil {
			for i := range batch {
				if err := p.HandleEvent(&batch[i]); err != nil {
					profileErr = err
					cancel() // stop the decoder; keep draining full
					break
				}
			}
		}
		free <- batch
	}
	decodeErr := <-decodeDone
	if profileErr != nil {
		return nil, profileErr
	}
	if decodeErr != nil {
		return nil, decodeErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return p.Finish()
}
