package profio

// Pipelined trace ingestion. Profiling a binary trace is a two-stage job:
// decoding and validating events (pure, per-event independent work) and the
// timestamping algorithm itself (inherently serial — it consumes a totally
// ordered trace, Figs. 8/9 of the paper). The stages are connected by a
// bounded channel of reusable event batches, so decoding the next batch
// overlaps with profiling the current one and the steady state allocates
// nothing: the same Depth+1 batch buffers circulate between a free list and
// the full queue for the whole run. Because the profiler still handles every
// event in exact trace order, the resulting Profiles are identical — byte
// for byte under Write — to the sequential path.
//
// The pipeline is also the unit of fault tolerance. Each batch carries a
// snapshot of the decoder's position and corruption accounting taken at
// batch-fill time; because the decoder is single-threaded and runs ahead of
// the profiler, only these snapshots — never the reader's live state — may
// be combined with profiler state. A checkpoint pairs the profiler state
// with the snapshot of the batch just profiled, so resuming re-reads the
// trace, skips exactly the delivered prefix, and re-detects exactly the
// corruption the snapshot already accounted for (which ResetStats then
// discards). Interrupting after any batch therefore yields final profiles —
// and corruption totals — byte-identical to an uninterrupted run.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"aprof/internal/core"
	"aprof/internal/obs"
	"aprof/internal/trace"
)

// DefaultBatchSize is the default number of events per pipeline batch:
// large enough to amortize channel synchronization over thousands of
// events, small enough that two buffers stay cache-resident.
const DefaultBatchSize = 4096

// DefaultCheckpointEvery is the default checkpoint cadence in batches.
const DefaultCheckpointEvery = 16

// StreamOptions tunes the staged pipeline of ProfileStream.
type StreamOptions struct {
	// BatchSize is the number of decoded events handed to the profiler at a
	// time (default DefaultBatchSize).
	BatchSize int
	// Depth is the capacity of the batch channel between the decoder and
	// the profiler (default 2: one batch being profiled, one in flight,
	// one being filled — double buffering with a one-batch cushion).
	Depth int
	// Lenient opens the trace in lenient mode: corrupt APT2 frames are
	// skipped and accounted in the output's Corruption stats instead of
	// aborting the run.
	Lenient bool
	// CheckpointPath, when non-empty, makes the run durable: the complete
	// profiler state is written there (atomically, via rename) every
	// CheckpointEvery batches.
	CheckpointPath string
	// CheckpointEvery is the checkpoint cadence in batches (default
	// DefaultCheckpointEvery). Only meaningful with CheckpointPath.
	CheckpointEvery int
	// OnBatch, when non-nil, is called after each batch is profiled (and
	// after any checkpoint for it was written), with the 1-based batch
	// index and the cumulative delivered event count. Returning a non-nil
	// error aborts the run with that error — the crash-injection hook of
	// the resume tests.
	OnBatch func(batch int, delivered uint64) error
	// FinalCheckpoint, with CheckpointPath set, writes one last checkpoint
	// when the run is interrupted — context cancellation, a decoder failure
	// (for a network source: the connection died), or an OnBatch abort —
	// capturing the last fully profiled batch. The profiler consumes events
	// only at batch granularity, so this state is always consistent; it is
	// skipped when the profiler itself failed mid-batch. An interrupted run
	// therefore loses nothing past the last batch instead of everything
	// past the last periodic checkpoint.
	FinalCheckpoint bool
	// Shards, when > 1, profiles the stream on the sharded multi-core
	// engine: events are consumed in windows of CheckpointEvery×BatchSize,
	// each window analyzed by Shards per-thread shards in parallel
	// (core.ProfileSharded). Output — profiles and checkpoint files — is
	// byte-identical to the sequential pipeline. Configurations the sharded
	// engine does not support (see core.CanShard) fall back to the
	// sequential pipeline silently. Under sharding the pipeline works at
	// window granularity: OnBatch fires once per window (with the
	// cumulative batch index and delivered count at the window's end), and
	// FinalCheckpoint captures the last window boundary. Periodic
	// checkpoints land at the same batch indices as the sequential path.
	Shards int
}

// eventBatch is the unit of work handed from the decoder to the profiler.
type eventBatch struct {
	events []trace.Event
	// delivered is the cumulative event count through this batch, and stats
	// the reader's corruption accounting, both snapshotted when the batch
	// was filled. They describe exactly the delivered prefix: the decoder
	// has not read past the frame holding this batch's last event.
	delivered uint64
	stats     trace.CorruptionStats
	// frames/resyncs snapshot the reader's cumulative frame accounting at
	// fill time, for the observability layer. The reader itself belongs to
	// the decoder goroutine; only these snapshots may cross to the profiler
	// stage.
	frames  uint64
	resyncs uint64
}

// streamObs holds the pipeline's pre-resolved metric handles (scope
// "profio") plus the last-published values of the cumulative quantities it
// delta-reports. It lives on the profiler (consumer) side of the channel;
// the decoder goroutine only touches the decode-latency histogram, which is
// safe to share (atomics).
type streamObs struct {
	batches         *obs.Counter
	eventsDelivered *obs.Counter
	framesDecoded   *obs.Counter
	framesResynced  *obs.Counter
	framesDropped   *obs.Counter
	checkpoints     *obs.Counter
	decodeUS        *obs.Histogram
	decodeHWM       *obs.Gauge
	profileUS       *obs.Histogram

	lastDelivered     uint64
	lastFrames        uint64
	lastResyncs       uint64
	lastFramesDropped int
}

// ObsScopeProfio is the metric scope of the streaming pipeline.
const ObsScopeProfio = "profio"

// DecodeHWMGauge is the name (under ObsScopeProfio) of the windowed
// batch-decode-latency high-water mark: every decoder sharing the registry
// raises it with SetMax per batch, and a consumer — the aprofd admission
// controller — reads and resets it per evaluation window. Unlike the
// batch_decode_us histogram it answers "how bad did decode get since I
// last looked", which is the overload signal, not the lifetime average.
const DecodeHWMGauge = "decode_us_hwm"

func newStreamObs(reg *obs.Registry, base core.StreamState) *streamObs {
	if reg == nil {
		return nil
	}
	s := reg.Scope(ObsScopeProfio)
	return &streamObs{
		batches:         s.Counter("batches"),
		eventsDelivered: s.Counter("events_delivered"),
		framesDecoded:   s.Counter("frames_decoded"),
		framesResynced:  s.Counter("frames_resynced"),
		framesDropped:   s.Counter("frames_dropped"),
		checkpoints:     s.Counter("checkpoints"),
		decodeUS:        s.Histogram("batch_decode_us"),
		decodeHWM:       s.Gauge(DecodeHWMGauge),
		profileUS:       s.Histogram("batch_profile_us"),
		// A resumed run reports only its own deliveries, not the
		// checkpointed prefix it skipped.
		lastDelivered: base.EventsDelivered,
	}
}

// publishBatch folds one profiled batch into the pipeline counters.
func (so *streamObs) publishBatch(b *eventBatch) {
	so.batches.Inc()
	so.eventsDelivered.Add(b.delivered - so.lastDelivered)
	so.lastDelivered = b.delivered
	so.framesDecoded.Add(b.frames - so.lastFrames)
	so.lastFrames = b.frames
	so.framesResynced.Add(b.resyncs - so.lastResyncs)
	so.lastResyncs = b.resyncs
	if d := b.stats.FramesDropped - so.lastFramesDropped; d > 0 {
		so.framesDropped.Add(uint64(d))
	}
	so.lastFramesDropped = b.stats.FramesDropped
}

// ProfileStream profiles a binary trace incrementally from r through a
// staged pipeline: a decoder goroutine parses and validates events into
// reusable batches and hands them to the (serial) profiler stage over a
// bounded channel. Trace files far larger than memory can be profiled; the
// profiler's state is bounded by the traced program's footprint, not the
// trace length.
//
// Cancelling ctx aborts the run between batches (a decoder blocked inside
// r.Read is not interrupted). The first error wins: a profiler error is
// reported even when the decoder subsequently fails or is cancelled, and
// vice versa.
func ProfileStream(ctx context.Context, r io.Reader, cfg core.Config, opts StreamOptions) (*core.Profiles, error) {
	br, err := trace.NewBinaryReaderOpts(r, trace.ReaderOptions{Lenient: opts.Lenient})
	if err != nil {
		return nil, err
	}
	if opts.Shards > 1 && core.CanShard(cfg) {
		if sp, err := core.NewShardedProfiler(br.Symbols(), cfg, opts.Shards); err == nil {
			return runShardedPipeline(ctx, br, sp, opts, core.StreamState{}, cfg.Obs)
		}
	}
	p := core.NewProfiler(br.Symbols(), cfg)
	return runPipeline(ctx, br, p, opts, core.StreamState{}, cfg.Obs)
}

// ResumeStream restarts an interrupted ProfileStream run from its last
// checkpoint. r must stream the same trace bytes as the original run; cfg
// must match the checkpointed configuration. The run keeps checkpointing
// per opts, so a run can crash and resume repeatedly.
func ResumeStream(ctx context.Context, r io.Reader, checkpointPath string, cfg core.Config, opts StreamOptions) (*core.Profiles, error) {
	ckf, err := os.Open(checkpointPath)
	if err != nil {
		return nil, fmt.Errorf("profio: opening checkpoint: %w", err)
	}
	p, state, err := core.ResumeProfiler(ckf, cfg)
	ckf.Close()
	if err != nil {
		return nil, err
	}
	br, err := trace.NewBinaryReaderOpts(r, trace.ReaderOptions{Lenient: opts.Lenient})
	if err != nil {
		return nil, err
	}
	if !sameNames(br.Symbols().Names(), p.Symbols().Names()) {
		return nil, errors.New("profio: trace does not match checkpoint (different symbol tables)")
	}
	if err := br.Skip(state.EventsDelivered); err != nil {
		return nil, fmt.Errorf("profio: repositioning trace at event %d: %w", state.EventsDelivered, err)
	}
	// The skip re-detected exactly the corruption already accounted in the
	// checkpointed stats; discard it so the totals are not double counted.
	br.ResetStats()
	if opts.Shards > 1 && core.CanShard(cfg) {
		// Checkpoints are path-agnostic: a sequential-run checkpoint resumes
		// on the sharded engine (and vice versa) because the APCK document is
		// the same in both directions. The restored profiler's state is
		// adopted shard-by-shard; it is not used directly afterwards.
		if sp, err := core.NewShardedFromProfiler(p, opts.Shards); err == nil {
			return runShardedPipeline(ctx, br, sp, opts, state, cfg.Obs)
		}
	}
	return runPipeline(ctx, br, p, opts, state, cfg.Obs)
}

func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runPipeline drives the decode/profile pipeline to completion, starting
// from base (zero for a fresh run, the checkpointed state for a resume).
// With a non-nil registry the pipeline reports its own health (batch
// decode/profile latency, frames decoded/resynced/dropped, delivered
// events) and republishes the profiler's state-derived gauges after every
// batch — all at batch granularity, never per event, so the registry cannot
// perturb the hot path it observes.
func runPipeline(ctx context.Context, br *trace.BinaryReader, p *core.Profiler, opts StreamOptions, base core.StreamState, reg *obs.Registry) (*core.Profiles, error) {
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	depth := opts.Depth
	if depth <= 0 {
		depth = 2
	}
	ckptEvery := opts.CheckpointEvery
	if ckptEvery <= 0 {
		ckptEvery = DefaultCheckpointEvery
	}

	so := newStreamObs(reg, base)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// full carries decoded batches to the profiler; free returns consumed
	// buffers to the decoder. depth+1 buffers circulate, so the free send
	// below never blocks and the decoder only ever waits on full.
	full := make(chan *eventBatch, depth)
	free := make(chan *eventBatch, depth+1)
	for i := 0; i < depth+1; i++ {
		free <- &eventBatch{events: make([]trace.Event, 0, batchSize)}
	}
	// decodeDone carries the decoder stage's terminal status (nil on clean
	// EOF); buffered so the decoder never blocks on it.
	decodeDone := make(chan error, 1)

	startDecoder(ctx, br, so, batchSize, base.EventsDelivered, full, free, decodeDone)

	var profileErr error
	// profilerBroken means the profiler failed mid-batch: its state is not
	// at a batch boundary and must never be checkpointed. lastState tracks
	// the stream position of the last fully profiled batch — the state a
	// final checkpoint captures when the run is interrupted.
	profilerBroken := false
	lastState := base
	batchIndex := 0
	for b := range full {
		if profileErr == nil {
			var profStart time.Time
			if so != nil {
				profStart = time.Now()
			}
			for i := range b.events {
				if err := p.HandleEvent(&b.events[i]); err != nil {
					profileErr = err
					profilerBroken = true
					cancel() // stop the decoder; keep draining full
					break
				}
			}
			if so != nil {
				so.profileUS.Observe(uint64(time.Since(profStart).Microseconds()))
				if profileErr == nil {
					so.publishBatch(b)
					p.PublishObs()
				}
			}
			if profileErr == nil {
				lastState = core.StreamState{EventsDelivered: b.delivered, Corruption: base.Corruption}
				lastState.Corruption.Merge(b.stats)
				batchIndex++
				if opts.CheckpointPath != "" && batchIndex%ckptEvery == 0 {
					if err := writeCheckpointFile(p, opts.CheckpointPath, lastState); err != nil {
						profileErr = err
						cancel()
					} else if so != nil {
						so.checkpoints.Inc()
					}
				}
			}
			if profileErr == nil && opts.OnBatch != nil {
				if err := opts.OnBatch(batchIndex, b.delivered); err != nil {
					profileErr = err
					cancel()
				}
			}
		}
		free <- b
	}
	decodeErr := <-decodeDone
	runErr := profileErr
	if runErr == nil {
		runErr = decodeErr
	}
	if runErr == nil {
		runErr = ctx.Err()
	}
	if runErr != nil {
		// The run is aborting. If the caller asked for durability across
		// interruptions, preserve the last batch boundary; a checkpoint-write
		// failure is reported alongside the abort reason, never silently.
		if opts.FinalCheckpoint && opts.CheckpointPath != "" && !profilerBroken {
			if err := writeCheckpointFile(p, opts.CheckpointPath, lastState); err != nil {
				runErr = errors.Join(runErr, err)
			} else if so != nil {
				so.checkpoints.Inc()
			}
		}
		return nil, runErr
	}
	ps, err := p.Finish()
	if err != nil {
		return nil, err
	}
	// Total corruption accounting: the (possibly checkpointed) prefix plus
	// everything this run's reader saw. The decoder goroutine has exited
	// (decodeDone received), so reading its final stats is race-free.
	final := base.Corruption
	final.Merge(br.Stats())
	ps.Corruption = final
	return ps, nil
}

// startDecoder launches the decode stage shared by the sequential and
// sharded pipelines: it parses events into recycled batches from free and
// hands them over full, reporting its terminal status on decodeDone and
// closing full when done.
func startDecoder(ctx context.Context, br *trace.BinaryReader, so *streamObs, batchSize int, baseDelivered uint64, full chan<- *eventBatch, free <-chan *eventBatch, decodeDone chan<- error) {
	go func() {
		defer close(full)
		// A panic while decoding must not take down the process hosting the
		// pipeline (the aprofd daemon runs one pipeline per connection): it
		// becomes this stage's terminal error, reported like any decode
		// failure. The profiler stage sees full closed, drains, and returns.
		defer func() {
			if v := recover(); v != nil {
				decodeDone <- fmt.Errorf("profio: decoder panic: %v", v)
			}
		}()
		delivered := baseDelivered
		for {
			var b *eventBatch
			select {
			case b = <-free:
			case <-ctx.Done():
				decodeDone <- ctx.Err()
				return
			}
			var fillStart time.Time
			if so != nil {
				fillStart = time.Now()
			}
			batch := b.events[:0]
			var decodeErr error
			for len(batch) < batchSize {
				batch = batch[:len(batch)+1]
				ok, err := br.Next(&batch[len(batch)-1])
				if err != nil || !ok {
					batch = batch[:len(batch)-1]
					decodeErr = err
					break
				}
			}
			delivered += uint64(len(batch))
			b.events = batch
			b.delivered = delivered
			b.stats = br.Stats()
			b.frames, b.resyncs = br.FrameStats()
			if so != nil {
				us := uint64(time.Since(fillStart).Microseconds())
				so.decodeUS.Observe(us)
				so.decodeHWM.SetMax(int64(us))
			}
			if len(batch) > 0 {
				select {
				case full <- b:
				case <-ctx.Done():
					decodeDone <- ctx.Err()
					return
				}
			}
			if decodeErr != nil || len(batch) < batchSize {
				// Error or end of trace (a short batch means br.Next
				// reported !ok).
				decodeDone <- decodeErr
				return
			}
		}
	}()
}

// runShardedPipeline drives the decode stage into the sharded multi-core
// engine. It shares the decoder with runPipeline but consumes at window
// granularity: CheckpointEvery batches are accumulated (batch buffers are
// recycled, so events are copied into the window) and fed to the engine as
// one window, analyzed by Shards workers in parallel. Windows end exactly
// where the sequential pipeline's periodic checkpoints land, so checkpoint
// files — like the final profiles — are byte-identical to the sequential
// path's.
func runShardedPipeline(ctx context.Context, br *trace.BinaryReader, sp *core.ShardedProfiler, opts StreamOptions, base core.StreamState, reg *obs.Registry) (*core.Profiles, error) {
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	depth := opts.Depth
	if depth <= 0 {
		depth = 2
	}
	ckptEvery := opts.CheckpointEvery
	if ckptEvery <= 0 {
		ckptEvery = DefaultCheckpointEvery
	}

	so := newStreamObs(reg, base)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	full := make(chan *eventBatch, depth)
	free := make(chan *eventBatch, depth+1)
	for i := 0; i < depth+1; i++ {
		free <- &eventBatch{events: make([]trace.Event, 0, batchSize)}
	}
	decodeDone := make(chan error, 1)
	startDecoder(ctx, br, so, batchSize, base.EventsDelivered, full, free, decodeDone)

	var profileErr error
	profilerBroken := false
	lastState := base
	batchIndex := 0

	window := make([]trace.Event, 0, ckptEvery*batchSize)
	winBatches := 0
	// winTail snapshots the stream accounting of the window's last batch —
	// the state a checkpoint taken at the window's end must carry.
	var winTail eventBatch

	profileWindow := func() {
		var profStart time.Time
		if so != nil {
			profStart = time.Now()
		}
		if err := sp.FeedWindow(window); err != nil {
			profileErr = err
			profilerBroken = true
			cancel()
			return
		}
		if so != nil {
			so.profileUS.Observe(uint64(time.Since(profStart).Microseconds()))
			// The delta-based batch accounting needs only the window's last
			// snapshot; the batches counter still counts every batch.
			so.publishBatch(&eventBatch{delivered: winTail.delivered, stats: winTail.stats, frames: winTail.frames, resyncs: winTail.resyncs})
			so.batches.Add(uint64(winBatches - 1))
			sp.PublishObs()
		}
		lastState = core.StreamState{EventsDelivered: winTail.delivered, Corruption: base.Corruption}
		lastState.Corruption.Merge(winTail.stats)
		if opts.CheckpointPath != "" && batchIndex%ckptEvery == 0 {
			if err := writeCheckpointFile(sp, opts.CheckpointPath, lastState); err != nil {
				profileErr = err
				cancel()
				return
			}
			if so != nil {
				so.checkpoints.Inc()
			}
		}
		if opts.OnBatch != nil {
			if err := opts.OnBatch(batchIndex, winTail.delivered); err != nil {
				profileErr = err
				cancel()
				return
			}
		}
		window = window[:0]
		winBatches = 0
	}

	for b := range full {
		if profileErr == nil {
			window = append(window, b.events...)
			winBatches++
			winTail = eventBatch{delivered: b.delivered, stats: b.stats, frames: b.frames, resyncs: b.resyncs}
			batchIndex++
			if winBatches == ckptEvery {
				profileWindow()
			}
		}
		free <- b
	}
	decodeErr := <-decodeDone
	// A trailing partial window — end of trace, or the prefix delivered
	// before a decoder failure — is profiled like the sequential path
	// profiles every delivered batch, so a final checkpoint loses nothing
	// past the last delivered batch.
	if profileErr == nil && len(window) > 0 {
		profileWindow()
	}

	runErr := profileErr
	if runErr == nil {
		runErr = decodeErr
	}
	if runErr == nil {
		runErr = ctx.Err()
	}
	if runErr != nil {
		if opts.FinalCheckpoint && opts.CheckpointPath != "" && !profilerBroken {
			if err := writeCheckpointFile(sp, opts.CheckpointPath, lastState); err != nil {
				runErr = errors.Join(runErr, err)
			} else if so != nil {
				so.checkpoints.Inc()
			}
		}
		return nil, runErr
	}
	ps, err := sp.Finish()
	if err != nil {
		return nil, err
	}
	final := base.Corruption
	final.Merge(br.Stats())
	ps.Corruption = final
	return ps, nil
}

// checkpointWriter is the serialization surface shared by the sequential
// Profiler and the ShardedProfiler: both emit the same APCK document.
type checkpointWriter interface {
	WriteCheckpoint(w io.Writer, state core.StreamState) error
}

// writeCheckpointFile writes the checkpoint atomically: a torn write leaves
// either the previous complete checkpoint or a temp file, never a partial
// file under the real name (and the CRC in the format catches the rest).
func writeCheckpointFile(p checkpointWriter, path string, state core.StreamState) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("profio: creating checkpoint: %w", err)
	}
	if err := p.WriteCheckpoint(f, state); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("profio: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("profio: installing checkpoint: %w", err)
	}
	return nil
}
