package profio

import (
	"bytes"
	"context"
	"io"
	"testing"
	"time"

	"aprof/internal/core"
	"aprof/internal/faultio"
	"aprof/internal/trace"
)

// encodeV2Framed encodes tr as APT2 with small frames so injected faults hit
// individual frames rather than the whole trace.
func encodeV2Framed(t *testing.T, tr *trace.Trace, eventsPerFrame int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteBinary2Opts(&buf, tr, trace.V2Options{EventsPerFrame: eventsPerFrame}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// lenientRun pushes a (possibly corrupted) APT2 byte stream through the
// lenient streaming pipeline with the count fault policy, so decode-level
// and event-level damage both degrade instead of aborting.
func lenientRun(t *testing.T, enc []byte) (*core.Profiles, error) {
	t.Helper()
	return lenientRunReader(t, bytes.NewReader(enc))
}

func lenientRunReader(t *testing.T, r io.Reader) (*core.Profiles, error) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.FaultPolicy = core.FaultCount
	return ProfileStream(context.Background(), r, cfg,
		StreamOptions{Lenient: true, BatchSize: 97})
}

// TestFaultSweepBitFlips sweeps fault seeds over bit-flipped APT2 streams.
// The pipeline must never panic, and whenever it completes, every event is
// accounted for: delivered into profiles plus reported dropped equals the
// trace's event count.
func TestFaultSweepBitFlips(t *testing.T) {
	tr := trace.Random(trace.RandomConfig{Seed: 9, Ops: 1200, Threads: 3})
	enc := encodeV2Framed(t, tr, 64)
	total := len(tr.Events)

	completed, damaged := 0, 0
	for seed := int64(0); seed < 40; seed++ {
		fr := faultio.NewFaultReader(bytes.NewReader(enc),
			faultio.Config{Seed: seed, BitFlipRate: 0.0005, MaxBitFlips: 4})
		cfg := core.DefaultConfig()
		cfg.FaultPolicy = core.FaultCount
		ps, err := ProfileStream(context.Background(), fr, cfg,
			StreamOptions{Lenient: true, BatchSize: 97})
		if err != nil {
			// Damage to the magic/header or symbol table is not recoverable;
			// the only requirement there is a clean error, which we got.
			continue
		}
		completed++
		if ps.Corruption.FramesDropped > 0 {
			damaged++
		}
		if got := ps.Events + ps.Corruption.EventsDropped; got != total {
			t.Errorf("seed %d: delivered %d + dropped %d = %d, want %d",
				seed, ps.Events, ps.Corruption.EventsDropped, got, total)
		}
	}
	if completed == 0 {
		t.Fatal("no seed completed — lenient recovery never engaged")
	}
	if damaged == 0 {
		t.Fatal("no seed damaged an events frame — sweep is vacuous")
	}
	t.Logf("sweep: %d/40 completed, %d with frame loss", completed, damaged)
}

// TestFaultSweepTruncation truncates the stream at every 10% mark. Lenient
// mode must deliver a prefix and report the tail as truncation loss.
func TestFaultSweepTruncation(t *testing.T) {
	tr := trace.Random(trace.RandomConfig{Seed: 11, Ops: 800})
	enc := encodeV2Framed(t, tr, 64)
	total := len(tr.Events)

	for i := 1; i < 10; i++ {
		cut := int64(len(enc) * i / 10)
		fr := faultio.NewFaultReader(bytes.NewReader(enc), faultio.Config{TruncateAt: cut})
		ps, err := lenientRunReader(t, fr)
		if err != nil {
			// Cutting inside the header/symbol table cannot be recovered.
			continue
		}
		if !ps.Corruption.Truncated {
			t.Errorf("cut at %d bytes: truncation not flagged", cut)
		}
		if got := ps.Events + ps.Corruption.EventsDropped; got != total {
			t.Errorf("cut at %d: delivered %d + dropped %d = %d, want %d",
				cut, ps.Events, ps.Corruption.EventsDropped, got, total)
		}
	}
}

// TestFaultExactFrameLoss corrupts exactly k=3 chosen frames and checks the
// report says exactly 3 frames dropped — the acceptance criterion, driven
// end-to-end through the pipeline rather than the decoder alone.
func TestFaultExactFrameLoss(t *testing.T) {
	tr := trace.Random(trace.RandomConfig{Seed: 13, Ops: 1500})
	enc := append([]byte(nil), encodeV2Framed(t, tr, 64)...)

	// Find events frames structurally: marker | kind | len | crc | payload.
	marker := []byte{0xF5, 0xA9, 0x1E, 0x4B}
	var eventFrameOffsets []int
	for off := 4; off+13 <= len(enc); {
		if !bytes.Equal(enc[off:off+4], marker) {
			t.Fatalf("lost frame sync at offset %d", off)
		}
		kind := enc[off+4]
		payloadLen := int(uint32(enc[off+5]) | uint32(enc[off+6])<<8 | uint32(enc[off+7])<<16 | uint32(enc[off+8])<<24)
		if kind == 2 {
			eventFrameOffsets = append(eventFrameOffsets, off)
		}
		off += 13 + payloadLen
	}
	if len(eventFrameOffsets) < 6 {
		t.Fatalf("only %d events frames, need ≥6", len(eventFrameOffsets))
	}
	for _, idx := range []int{1, 3, 5} {
		off := eventFrameOffsets[idx]
		enc[off+20] ^= 0x40 // flip a payload byte; CRC catches it
	}

	ps, err := lenientRun(t, enc)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Corruption.FramesDropped != 3 {
		t.Errorf("FramesDropped = %d, want exactly 3", ps.Corruption.FramesDropped)
	}
	if got := ps.Events + ps.Corruption.EventsDropped; got != len(tr.Events) {
		t.Errorf("delivered %d + dropped %d != total %d", ps.Events, ps.Corruption.EventsDropped, len(tr.Events))
	}
}

// TestRetryReaderHealsTransientFault wraps a flaky source in a RetryReader:
// the profile must be byte-identical to a clean run, with zero loss reported.
func TestRetryReaderHealsTransientFault(t *testing.T) {
	tr := trace.Random(trace.RandomConfig{Seed: 17, Ops: 900})
	enc := encodeV2Framed(t, tr, 64)

	clean, err := lenientRun(t, enc)
	if err != nil {
		t.Fatal(err)
	}

	fr := faultio.NewFaultReader(bytes.NewReader(enc), faultio.Config{ErrAt: int64(len(enc) / 2)})
	rr := faultio.NewRetryReader(fr, faultio.RetryOptions{Sleep: func(d time.Duration) {}})
	cfg := core.DefaultConfig()
	cfg.FaultPolicy = core.FaultCount
	healed, err := ProfileStream(context.Background(), rr, cfg,
		StreamOptions{Lenient: true, BatchSize: 97})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Retries() == 0 {
		t.Fatal("fault never fired — test is vacuous")
	}
	if healed.Corruption.FramesDropped != 0 || healed.Corruption.EventsDropped != 0 {
		t.Errorf("retried run reported loss: %+v", healed.Corruption)
	}
	if !bytes.Equal(writeBytes(t, healed), writeBytes(t, clean)) {
		t.Error("retried run differs from clean run")
	}
}

// TestFaultWithoutRetryStrictAborts shows the counterpart: the same
// transient fault without a RetryReader aborts a strict run — degraded
// input never silently produces a strict-mode profile.
func TestFaultWithoutRetryStrictAborts(t *testing.T) {
	tr := trace.Random(trace.RandomConfig{Seed: 17, Ops: 900})
	enc := encodeV2Framed(t, tr, 64)
	fr := faultio.NewFaultReader(bytes.NewReader(enc), faultio.Config{ErrAt: int64(len(enc) / 2)})
	_, err := ProfileStream(context.Background(), fr, core.DefaultConfig(),
		StreamOptions{BatchSize: 97})
	if err == nil {
		t.Fatal("strict run completed despite a transient I/O error")
	}
}
