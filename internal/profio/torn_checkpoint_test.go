package profio

// The torn-checkpoint sweep: a crash can tear the checkpoint file at any
// byte (the atomic tmp+rename write makes this nearly impossible, but
// "nearly" is not a durability guarantee — disks lie). ResumeStream over
// every possible prefix, and over every single-bit corruption, must either
// resume cleanly (the intact file) or fail with a diagnosable
// ErrCheckpointCorrupt — never panic, hang, or silently profile from a
// corrupt state.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"aprof/internal/core"
	"aprof/internal/trace"
)

// makeKilledCheckpoint runs a stream that crashes mid-way, leaving a valid
// checkpoint file behind, and returns (trace bytes, checkpoint bytes,
// reference profile bytes).
func makeKilledCheckpoint(t *testing.T) (enc, ckpt, want []byte) {
	t.Helper()
	tr := trace.Random(trace.RandomConfig{Seed: 50, Ops: 600, Threads: 2})
	enc = encodeTrace(t, tr)

	ref, err := ProfileStream(context.Background(), bytes.NewReader(enc), core.DefaultConfig(), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want = writeBytes(t, ref)

	path := filepath.Join(t.TempDir(), "torn.apck")
	_, err = ProfileStream(context.Background(), bytes.NewReader(enc), core.DefaultConfig(), StreamOptions{
		BatchSize:       32,
		CheckpointPath:  path,
		CheckpointEvery: 1,
		OnBatch: func(batch int, delivered uint64) error {
			if batch == 4 {
				return errKill
			}
			return nil
		},
	})
	if !errors.Is(err, errKill) {
		t.Fatalf("crash injection failed: %v", err)
	}
	ckpt, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return enc, ckpt, want
}

// resumeWith writes blob as the checkpoint file and attempts a resume.
func resumeWith(t *testing.T, dir string, enc, blob []byte) ([]byte, error) {
	t.Helper()
	path := filepath.Join(dir, "ck.apck")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	ps, err := ResumeStream(context.Background(), bytes.NewReader(enc), path, core.DefaultConfig(), StreamOptions{})
	if err != nil {
		return nil, err
	}
	return writeBytes(t, ps), nil
}

// TestTornCheckpointEveryPrefix truncates the checkpoint at every byte
// boundary. Every proper prefix must fail with ErrCheckpointCorrupt; the
// complete file must resume to the byte-identical profile.
func TestTornCheckpointEveryPrefix(t *testing.T) {
	enc, ckpt, want := makeKilledCheckpoint(t)
	dir := t.TempDir()

	for cut := 0; cut < len(ckpt); cut++ {
		_, err := resumeWith(t, dir, enc, ckpt[:cut])
		if err == nil {
			t.Fatalf("resume from a %d/%d-byte prefix succeeded", cut, len(ckpt))
		}
		if !errors.Is(err, core.ErrCheckpointCorrupt) {
			t.Fatalf("prefix %d/%d: err = %v, want ErrCheckpointCorrupt", cut, len(ckpt), err)
		}
	}

	got, err := resumeWith(t, dir, enc, ckpt)
	if err != nil {
		t.Fatalf("resume from the intact checkpoint: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed profile differs from the uninterrupted run")
	}
}

// TestCorruptCheckpointEveryBitFlip flips one bit at every byte position.
// The format's magic, version, length, and CRC checks must catch every
// one as ErrCheckpointCorrupt — no flip may be profiled from silently.
func TestCorruptCheckpointEveryBitFlip(t *testing.T) {
	enc, ckpt, _ := makeKilledCheckpoint(t)
	dir := t.TempDir()

	for pos := 0; pos < len(ckpt); pos++ {
		blob := bytes.Clone(ckpt)
		blob[pos] ^= 1 << (pos % 8)
		_, err := resumeWith(t, dir, enc, blob)
		if err == nil {
			t.Fatalf("resume with bit %d of byte %d flipped succeeded", pos%8, pos)
		}
		if !errors.Is(err, core.ErrCheckpointCorrupt) {
			t.Fatalf("flip at byte %d: err = %v, want ErrCheckpointCorrupt", pos, err)
		}
	}
}

// TestCheckpointTrailingGarbage: extra bytes after a valid checkpoint are
// tolerated for the prefix-framed format only if the reader never trusts
// anything past the declared payload; the resume must still succeed.
func TestCheckpointTrailingGarbage(t *testing.T) {
	enc, ckpt, want := makeKilledCheckpoint(t)
	dir := t.TempDir()

	blob := append(bytes.Clone(ckpt), []byte("trailing junk that must be ignored")...)
	got, err := resumeWith(t, dir, enc, blob)
	if err != nil {
		t.Fatalf("resume with trailing garbage: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("trailing garbage changed the resumed profile")
	}
}

// TestCorruptCheckpointErrorIsDiagnosable: the error must say what is
// wrong, not just that something is.
func TestCorruptCheckpointErrorIsDiagnosable(t *testing.T) {
	enc, ckpt, _ := makeKilledCheckpoint(t)
	dir := t.TempDir()

	cases := []struct {
		name string
		blob []byte
		want string
	}{
		{"empty", nil, "corrupt checkpoint"},
		{"bad magic", append([]byte("NOPE"), ckpt[4:]...), "bad magic"},
		{"truncated payload", ckpt[:len(ckpt)/2], "corrupt checkpoint"},
	}
	for _, tc := range cases {
		_, err := resumeWith(t, dir, enc, tc.blob)
		if err == nil {
			t.Fatalf("%s: resume succeeded", tc.name)
		}
		if !errContains(err, tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
		if !errors.Is(err, core.ErrCheckpointCorrupt) {
			t.Errorf("%s: err = %v, not ErrCheckpointCorrupt", tc.name, err)
		}
	}
}
