// Package profio serializes profiling results. The original aprof writes
// report files that downstream tooling (aprof-plot) consumes; this package
// plays that role with a stable JSON schema carrying the thread-sensitive
// profiles, every performance point of both metrics, and the run-level
// counters. Calling-context profiles are not serialized: the JSON file is
// the routine-level exchange format; context-sensitive analyses consume
// Profiles in memory.
package profio

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"aprof/internal/core"
	"aprof/internal/trace"
)

// fileFormat is bumped on breaking schema changes.
const fileFormat = 1

// pointJSON is one performance point of a cost plot.
type pointJSON struct {
	N     uint64  `json:"n"`
	Count uint64  `json:"count"`
	Max   uint64  `json:"max"`
	Min   uint64  `json:"min"`
	Sum   uint64  `json:"sum"`
	SumSq float64 `json:"sumsq"`
}

// profileJSON is one thread-sensitive routine profile.
type profileJSON struct {
	Routine         string      `json:"routine"`
	Thread          int32       `json:"thread"`
	Calls           uint64      `json:"calls"`
	SumRMS          uint64      `json:"sum_rms"`
	SumDRMS         uint64      `json:"sum_drms"`
	FirstReads      uint64      `json:"first_reads"`
	InducedThread   uint64      `json:"induced_thread"`
	InducedExternal uint64      `json:"induced_external"`
	TotalCost       uint64      `json:"total_cost"`
	DRMSPoints      []pointJSON `json:"drms_points"`
	RMSPoints       []pointJSON `json:"rms_points"`
}

// corruptionJSON summarizes decode-layer loss of a lenient streaming run.
// The structured CorruptionError log is diagnostic output, not part of the
// exchange format, so only the counters are serialized.
type corruptionJSON struct {
	FramesDropped int   `json:"frames_dropped,omitempty"`
	EventsDropped int   `json:"events_dropped,omitempty"`
	BytesSkipped  int64 `json:"bytes_skipped,omitempty"`
	Truncated     bool  `json:"truncated,omitempty"`
}

// fileJSON is the on-disk document. The drops and corruption objects are
// omitted entirely on clean runs, so documents written before the
// fault-tolerance layer and documents of strict runs are byte-identical to
// the previous schema (the format number stays 1).
type fileJSON struct {
	Format       int             `json:"format"`
	Generator    string          `json:"generator"`
	Events       int             `json:"events"`
	Renumberings int             `json:"renumberings"`
	Drops        *core.DropStats `json:"drops,omitempty"`
	Corruption   *corruptionJSON `json:"corruption,omitempty"`
	Profiles     []profileJSON   `json:"profiles"`
}

func pointsToJSON(points map[uint64]*core.CostStats) []pointJSON {
	out := make([]pointJSON, 0, len(points))
	for n, st := range points {
		out = append(out, pointJSON{
			N: n, Count: st.Count, Max: st.Max, Min: st.Min, Sum: st.Sum, SumSq: st.SumSq,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].N < out[j].N })
	return out
}

func pointsFromJSON(points []pointJSON) (map[uint64]*core.CostStats, error) {
	out := make(map[uint64]*core.CostStats, len(points))
	for _, p := range points {
		if _, dup := out[p.N]; dup {
			return nil, fmt.Errorf("profio: duplicate point at n=%d", p.N)
		}
		out[p.N] = &core.CostStats{
			Count: p.Count, Max: p.Max, Min: p.Min, Sum: p.Sum, SumSq: p.SumSq,
		}
	}
	return out, nil
}

// Write serializes ps to w as JSON.
func Write(w io.Writer, ps *core.Profiles) error {
	doc := fileJSON{
		Format:       fileFormat,
		Generator:    "aprof-drms",
		Events:       ps.Events,
		Renumberings: ps.Renumberings,
	}
	if !ps.Drops.IsZero() {
		drops := ps.Drops
		doc.Drops = &drops
	}
	if c := ps.Corruption; c.FramesDropped != 0 || c.EventsDropped != 0 || c.BytesSkipped != 0 || c.Truncated {
		doc.Corruption = &corruptionJSON{
			FramesDropped: c.FramesDropped,
			EventsDropped: c.EventsDropped,
			BytesSkipped:  c.BytesSkipped,
			Truncated:     c.Truncated,
		}
	}
	keys := make([]core.Key, 0, len(ps.ByKey))
	for k := range ps.ByKey {
		keys = append(keys, k)
	}
	// Canonical order: by routine name, then thread. Sorting by name rather
	// than interned id makes the serialized form independent of interning
	// order, so profiles that are semantically equal — e.g. a MergeRuns
	// left fold vs a MergeRunsParallel tree reduction — encode to identical
	// bytes.
	sort.Slice(keys, func(i, j int) bool {
		ni, nj := ps.Symbols.Name(keys[i].Routine), ps.Symbols.Name(keys[j].Routine)
		if ni != nj {
			return ni < nj
		}
		return keys[i].Thread < keys[j].Thread
	})
	for _, k := range keys {
		p := ps.ByKey[k]
		doc.Profiles = append(doc.Profiles, profileJSON{
			Routine:         ps.Symbols.Name(k.Routine),
			Thread:          int32(k.Thread),
			Calls:           p.Calls,
			SumRMS:          p.SumRMS,
			SumDRMS:         p.SumDRMS,
			FirstReads:      p.FirstReads,
			InducedThread:   p.InducedThread,
			InducedExternal: p.InducedExternal,
			TotalCost:       p.TotalCost,
			DRMSPoints:      pointsToJSON(p.DRMSPoints),
			RMSPoints:       pointsToJSON(p.RMSPoints),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Read deserializes profiles written by Write.
func Read(r io.Reader) (*core.Profiles, error) {
	var doc fileJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("profio: decoding: %w", err)
	}
	if doc.Format != fileFormat {
		return nil, fmt.Errorf("profio: unsupported format %d (want %d)", doc.Format, fileFormat)
	}
	ps := &core.Profiles{
		Symbols:      trace.NewSymbolTable(),
		ByKey:        make(map[core.Key]*core.Profile, len(doc.Profiles)),
		Events:       doc.Events,
		Renumberings: doc.Renumberings,
	}
	if doc.Drops != nil {
		ps.Drops = *doc.Drops
	}
	if doc.Corruption != nil {
		ps.Corruption = trace.CorruptionStats{
			FramesDropped: doc.Corruption.FramesDropped,
			EventsDropped: doc.Corruption.EventsDropped,
			BytesSkipped:  doc.Corruption.BytesSkipped,
			Truncated:     doc.Corruption.Truncated,
		}
	}
	for i, pj := range doc.Profiles {
		id := ps.Symbols.Intern(pj.Routine)
		key := core.Key{Routine: id, Thread: trace.ThreadID(pj.Thread)}
		if _, dup := ps.ByKey[key]; dup {
			return nil, fmt.Errorf("profio: profile %d: duplicate (routine %q, thread %d)", i, pj.Routine, pj.Thread)
		}
		drms, err := pointsFromJSON(pj.DRMSPoints)
		if err != nil {
			return nil, fmt.Errorf("profio: profile %q/%d: %w", pj.Routine, pj.Thread, err)
		}
		rms, err := pointsFromJSON(pj.RMSPoints)
		if err != nil {
			return nil, fmt.Errorf("profio: profile %q/%d: %w", pj.Routine, pj.Thread, err)
		}
		ps.ByKey[key] = &core.Profile{
			Routine:         id,
			Thread:          trace.ThreadID(pj.Thread),
			Calls:           pj.Calls,
			SumRMS:          pj.SumRMS,
			SumDRMS:         pj.SumDRMS,
			FirstReads:      pj.FirstReads,
			InducedThread:   pj.InducedThread,
			InducedExternal: pj.InducedExternal,
			TotalCost:       pj.TotalCost,
			DRMSPoints:      drms,
			RMSPoints:       rms,
		}
	}
	return ps, nil
}
