package profio

// Streaming-pipeline benchmarks for the BENCH_core.json regression baseline
// (`make bench`), including the instrumented-vs-bare pair behind the ≤5%
// observability overhead bound (obs_overhead_test.go).

import (
	"bytes"
	"context"
	"testing"

	"aprof/internal/core"
	"aprof/internal/obs"
	"aprof/internal/trace"
)

// benchStream encodes one synthetic multithreaded trace per format, shared
// by every benchmark in this file.
func benchStream(b *testing.B, v2 bool) []byte {
	b.Helper()
	tr := trace.Random(trace.RandomConfig{Seed: 1, Ops: 20000})
	var buf bytes.Buffer
	var err error
	if v2 {
		err = trace.WriteBinary2(&buf, tr)
	} else {
		err = trace.WriteBinary(&buf, tr)
	}
	if err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func benchProfileStream(b *testing.B, data []byte, cfg core.Config) {
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps, err := ProfileStream(context.Background(), bytes.NewReader(data), cfg, StreamOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if ps.Events == 0 {
			b.Fatal("empty profiles")
		}
	}
}

// BenchmarkProfileStream is the bare pipeline: no registry, so the
// observability layer compiles down to one nil check per event.
func BenchmarkProfileStream(b *testing.B) {
	benchProfileStream(b, benchStream(b, false), core.DefaultConfig())
}

// BenchmarkProfileStreamObs is the same run with a live registry: per-kind
// event counters on the hot path plus batch-boundary publication. The gap to
// BenchmarkProfileStream is the observability overhead, bounded at 5% by
// TestObsOverheadBound.
func BenchmarkProfileStreamObs(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Obs = obs.NewRegistry()
	benchProfileStream(b, benchStream(b, false), cfg)
}

// BenchmarkProfileStreamV2 streams the framed APT2 encoding, adding CRC
// verification and frame accounting to the decode stage.
func BenchmarkProfileStreamV2(b *testing.B) {
	benchProfileStream(b, benchStream(b, true), core.DefaultConfig())
}
