package profio

// Metamorphic differential tests for the observability layer: attaching a
// metrics registry must never change what the profiler computes. The
// property is checked byte-for-byte on the serialized profiles (Write), the
// same equivalence oracle the checkpoint/resume and concurrency tests use,
// over random traces, the committed fuzz corpora (including corrupt and
// truncated seeds), and RunConcurrent with one registry shared across
// profilers (run under -race, this also proves the registry data-race-free).

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"aprof/internal/core"
	"aprof/internal/obs"
	"aprof/internal/trace"
)

// profileBytes streams data through ProfileStream under cfg and returns the
// serialized profiles (nil on error, with the error).
func profileBytes(t *testing.T, data []byte, cfg core.Config, opts StreamOptions) ([]byte, error) {
	t.Helper()
	ps, err := ProfileStream(context.Background(), bytes.NewReader(data), cfg, opts)
	if err != nil {
		return nil, err
	}
	return writeBytes(t, ps), nil
}

// checkMetamorphic profiles data twice — registry nil vs fresh registry —
// and asserts identical outcomes: same error (or none) and byte-identical
// profiles. Returns the registry for callers wanting metric assertions.
func checkMetamorphic(t *testing.T, name string, data []byte, cfg core.Config, opts StreamOptions) *obs.Registry {
	t.Helper()
	cfg.Obs = nil
	bare, bareErr := profileBytes(t, data, cfg, opts)
	reg := obs.NewRegistry()
	cfg.Obs = reg
	instr, instrErr := profileBytes(t, data, cfg, opts)

	if (bareErr == nil) != (instrErr == nil) {
		t.Fatalf("%s: registry changed the error: nil-obs err=%v, obs err=%v", name, bareErr, instrErr)
	}
	if bareErr != nil {
		if bareErr.Error() != instrErr.Error() {
			t.Errorf("%s: registry changed the error text:\n  nil-obs: %v\n  obs:     %v", name, bareErr, instrErr)
		}
		return reg
	}
	if !bytes.Equal(bare, instr) {
		t.Errorf("%s: registry changed the profile output (%d vs %d bytes)", name, len(bare), len(instr))
	}
	return reg
}

func TestObsMetamorphicRandom(t *testing.T) {
	for _, v2 := range []bool{false, true} {
		for seed := int64(1); seed <= 4; seed++ {
			tr := trace.Random(trace.RandomConfig{Seed: seed, Ops: 3000})
			var buf bytes.Buffer
			var err error
			if v2 {
				err = trace.WriteBinary2(&buf, tr)
			} else {
				err = trace.WriteBinary(&buf, tr)
			}
			if err != nil {
				t.Fatal(err)
			}
			name := "apt1"
			if v2 {
				name = "apt2"
			}
			name += "/seed" + strconv.FormatInt(seed, 10)

			reg := checkMetamorphic(t, name, buf.Bytes(), core.DefaultConfig(), StreamOptions{BatchSize: 256})

			// The flow counters must agree with the profiler's own event
			// accounting: sum(events_*) == len(trace).
			snap := reg.Snapshot()
			if got := snap.Scope(core.ObsScopeCore).CounterSum("events_"); got != uint64(tr.Len()) {
				t.Errorf("%s: events counters sum to %d, trace has %d", name, got, tr.Len())
			}
		}
	}
}

// TestObsMetamorphicCorpora replays every committed FuzzReadTrace seed —
// valid, corrupt-CRC and truncated alike — through the lenient,
// fault-counting configuration, where the drop and resync counters are
// exercised for real.
func TestObsMetamorphicCorpora(t *testing.T) {
	dir := filepath.Join("..", "trace", "testdata", "fuzz", "FuzzReadTrace")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fuzz corpus missing: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("empty fuzz corpus")
	}
	for _, e := range entries {
		data, err := readCorpusSeed(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		cfg := core.DefaultConfig()
		cfg.FaultPolicy = core.FaultCount
		checkMetamorphic(t, e.Name(), data, cfg, StreamOptions{Lenient: true, BatchSize: 64})
	}
}

// readCorpusSeed parses one go-fuzz corpus file ("go test fuzz v1" header
// followed by a []byte(...) literal per input).
func readCorpusSeed(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.SplitN(strings.TrimSpace(string(raw)), "\n", 2)
	if len(lines) != 2 {
		return nil, os.ErrInvalid
	}
	lit := strings.TrimSpace(lines[1])
	lit = strings.TrimPrefix(lit, "[]byte(")
	lit = strings.TrimSuffix(lit, ")")
	s, err := strconv.Unquote(lit)
	if err != nil {
		return nil, err
	}
	return []byte(s), nil
}

// TestObsRunConcurrentSharedRegistry profiles independent traces through
// RunConcurrent with every profiler publishing into ONE shared registry.
// Under -race this proves the registry and the delta-publishing in
// PublishObs are data-race-free; the output must stay byte-identical to the
// registry-free run, and the shared counters must sum the whole fleet.
func TestObsRunConcurrentSharedRegistry(t *testing.T) {
	const jobsN = 6
	traces := make([]*trace.Trace, jobsN)
	var total uint64
	for i := range traces {
		traces[i] = trace.Random(trace.RandomConfig{Seed: int64(i + 40), Ops: 1500})
		total += uint64(traces[i].Len())
	}
	mkJobs := func() []core.Job {
		jobs := make([]core.Job, jobsN)
		for i := range jobs {
			tr := traces[i]
			jobs[i] = func(context.Context) (*trace.Trace, error) { return tr, nil }
		}
		return jobs
	}

	cfg := core.DefaultConfig()
	bare, err := core.RunConcurrent(context.Background(), mkJobs(), cfg, 4)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	cfg.Obs = reg
	instr, err := core.RunConcurrent(context.Background(), mkJobs(), cfg, 4)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(writeBytes(t, bare), writeBytes(t, instr)) {
		t.Error("shared registry changed RunConcurrent output")
	}
	snap := reg.Snapshot()
	if got := snap.Scope(core.ObsScopeCore).CounterSum("events_"); got != total {
		t.Errorf("shared events counters sum to %d, fleet processed %d", got, total)
	}
}
