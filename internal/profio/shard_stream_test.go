package profio

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"aprof/internal/core"
	"aprof/internal/trace"
	"aprof/internal/workloads"
)

// TestShardStreamByteIdentical is the pipeline-level acceptance test of the
// sharded engine: for every shard count and batch/checkpoint geometry the
// streamed profiles must serialize to exactly the bytes of the sequential
// stream (which the suite elsewhere pins to the in-memory profiler).
func TestShardStreamByteIdentical(t *testing.T) {
	traces := map[string]*trace.Trace{
		"random-3t":  trace.Random(trace.RandomConfig{Seed: 5, Ops: 1200}),
		"random-6t":  trace.Random(trace.RandomConfig{Seed: 6, Threads: 6, Ops: 1200, Cells: 10}),
		"prod-cons":  workloads.ProducerConsumer(200),
		"omp-suite":  workloads.SuiteOMP()[0].Build(),
		"mysql-like": workloads.SuiteMySQL()[0].Build(),
	}
	for name, tr := range traces {
		t.Run(name, func(t *testing.T) {
			enc := encodeTrace(t, tr)
			for _, cfg := range []core.Config{core.DefaultConfig(), {ThreadInput: true, ContextSensitive: true}} {
				want, err := ProfileStream(context.Background(), bytes.NewReader(enc), cfg, StreamOptions{})
				if err != nil {
					t.Fatal(err)
				}
				wantBytes := writeBytes(t, want)
				for _, opts := range []StreamOptions{
					{Shards: 2},
					{Shards: 3, BatchSize: 7},
					{Shards: 4, BatchSize: 64, CheckpointEvery: 1},
					{Shards: 8, BatchSize: 32, CheckpointEvery: 3},
					{Shards: 16, BatchSize: 1},
				} {
					got, err := ProfileStream(context.Background(), bytes.NewReader(enc), cfg, opts)
					if err != nil {
						t.Fatalf("opts %+v: %v", opts, err)
					}
					if !bytes.Equal(writeBytes(t, got), wantBytes) {
						t.Errorf("opts %+v: sharded stream output differs from sequential", opts)
					}
				}
			}
		})
	}
}

// TestShardStreamLenientByteIdentical feeds a trace whose v2 framing is
// corrupted mid-stream: the lenient reader resyncs, and the recovered event
// suffix must profile identically whether analyzed sequentially or sharded.
func TestShardStreamLenientByteIdentical(t *testing.T) {
	tr := trace.Random(trace.RandomConfig{Seed: 9, Threads: 4, Ops: 900})
	var buf bytes.Buffer
	if err := trace.WriteBinary2Opts(&buf, tr, trace.V2Options{EventsPerFrame: 32}); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	enc[len(enc)/2] ^= 0x40 // corrupt one frame's payload; CRC catches it

	// A dropped frame can orphan later returns; count them instead of
	// aborting, as a lenient production run would.
	cfg := core.DefaultConfig()
	cfg.FaultPolicy = core.FaultCount

	want, err := ProfileStream(context.Background(), bytes.NewReader(enc), cfg, StreamOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if want.Corruption.FramesDropped == 0 {
		t.Fatal("corruption not detected; test is vacuous")
	}
	wantBytes := writeBytes(t, want)
	for _, shards := range []int{2, 3, 8} {
		got, err := ProfileStream(context.Background(), bytes.NewReader(enc), cfg,
			StreamOptions{Lenient: true, Shards: shards, BatchSize: 48})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !bytes.Equal(writeBytes(t, got), wantBytes) {
			t.Errorf("shards=%d: lenient sharded output differs from sequential", shards)
		}
	}
}

// TestShardCheckpointFileParity compares the APCK checkpoint files
// themselves: at the same window-aligned batch index, the sharded pipeline
// must have written byte-for-byte the checkpoint the sequential pipeline
// wrote — that file equality is what makes cross-mode resume sound.
func TestShardCheckpointFileParity(t *testing.T) {
	tr := trace.Random(trace.RandomConfig{Seed: 14, Threads: 5, Ops: 1600})
	enc := encodeTrace(t, tr)
	cfg := core.DefaultConfig()
	const batchSize, every, at = 32, 4, 8

	capture := func(shards int) []byte {
		ckpt := filepath.Join(t.TempDir(), "ckpt")
		var snap []byte
		opts := StreamOptions{
			BatchSize:       batchSize,
			CheckpointEvery: every,
			CheckpointPath:  ckpt,
			Shards:          shards,
			OnBatch: func(batch int, delivered uint64) error {
				if batch == at {
					data, err := os.ReadFile(ckpt)
					if err != nil {
						return err
					}
					snap = data
				}
				return nil
			},
		}
		if _, err := ProfileStream(context.Background(), bytes.NewReader(enc), cfg, opts); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if snap == nil {
			t.Fatalf("shards=%d: batch %d never reached", shards, at)
		}
		return snap
	}

	seq := capture(1)
	for _, shards := range []int{2, 4, 7} {
		if got := capture(shards); !bytes.Equal(got, seq) {
			t.Errorf("shards=%d: checkpoint file at batch %d differs from sequential (%d vs %d bytes)",
				shards, at, len(got), len(seq))
		}
	}
}

// TestShardKillResumeInterop proves the checkpoint format is mode-agnostic
// in both directions: a run killed in either mode resumes in either mode and
// still reproduces the uninterrupted sequential bytes. Kill points cover
// window-aligned and (for sequential kills) unaligned batch boundaries, so
// sharded resume also adopts mid-window sequential state.
func TestShardKillResumeInterop(t *testing.T) {
	tr := trace.Random(trace.RandomConfig{Seed: 23, Threads: 4, Ops: 2000})
	enc := encodeTrace(t, tr)
	cfg := core.DefaultConfig()
	base := StreamOptions{BatchSize: 64, CheckpointEvery: 2}

	want, err := ProfileStream(context.Background(), bytes.NewReader(enc), cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := writeBytes(t, want)

	run := func(shards int, opts StreamOptions) (*core.Profiles, error) {
		opts.Shards = shards
		return ProfileStream(context.Background(), bytes.NewReader(enc), cfg, opts)
	}
	resume := func(shards int, ckpt string, opts StreamOptions) (*core.Profiles, error) {
		opts.Shards = shards
		opts.CheckpointPath = ckpt
		return ResumeStream(context.Background(), bytes.NewReader(enc), ckpt, cfg, opts)
	}

	cases := []struct {
		name                     string
		killShards, resumeShards int
		kill                     int // batch index OnBatch kills at
	}{
		{"sharded-to-sequential", 4, 1, 4},
		{"sequential-to-sharded-aligned", 1, 4, 4},
		{"sequential-to-sharded-unaligned", 1, 3, 5},
		{"sharded-to-sharded", 2, 7, 6},
		{"sharded-to-sequential-late", 8, 1, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ckpt := filepath.Join(t.TempDir(), "ckpt")
			kopts := base
			kopts.CheckpointPath = ckpt
			kopts.OnBatch = func(batch int, delivered uint64) error {
				if batch >= tc.kill {
					return errKill
				}
				return nil
			}
			if _, err := run(tc.killShards, kopts); !errors.Is(err, errKill) {
				t.Fatalf("kill not delivered: %v", err)
			}
			got, err := resume(tc.resumeShards, ckpt, base)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if !bytes.Equal(writeBytes(t, got), wantBytes) {
				t.Error("resumed output differs from uninterrupted sequential run")
			}
		})
	}
}

// TestShardKillResumeSweep is the dense version of the interop test: for a
// small window geometry, kill a sharded run after EVERY window and resume
// sequentially, and kill a sequential run after EVERY batch and resume
// sharded. Mirrors TestKillAndResumeDeterminism with the modes crossed.
func TestShardKillResumeSweep(t *testing.T) {
	tr := trace.Random(trace.RandomConfig{Seed: 31, Threads: 5, Ops: 1500})
	enc := encodeTrace(t, tr)
	cfg := core.DefaultConfig()
	opts := StreamOptions{BatchSize: 128, CheckpointEvery: 1}

	want, err := ProfileStream(context.Background(), bytes.NewReader(enc), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := writeBytes(t, want)
	batches := (tr.Len() + opts.BatchSize - 1) / opts.BatchSize

	for _, dir := range []struct {
		name                     string
		killShards, resumeShards int
	}{
		{"sharded-kill-sequential-resume", 4, 1},
		{"sequential-kill-sharded-resume", 1, 4},
	} {
		t.Run(dir.name, func(t *testing.T) {
			ckpt := filepath.Join(t.TempDir(), "ckpt")
			for kill := 1; kill <= batches; kill++ {
				kopts := opts
				kopts.Shards = dir.killShards
				kopts.CheckpointPath = ckpt
				kopts.OnBatch = func(batch int, delivered uint64) error {
					if batch == kill {
						return errKill
					}
					return nil
				}
				_, err := ProfileStream(context.Background(), bytes.NewReader(enc), cfg, kopts)
				if err == nil {
					continue // final short batch completed before the kill
				}
				if !errors.Is(err, errKill) {
					t.Fatalf("kill %d: %v", kill, err)
				}
				ropts := opts
				ropts.Shards = dir.resumeShards
				ropts.CheckpointPath = ckpt
				got, err := ResumeStream(context.Background(), bytes.NewReader(enc), ckpt, cfg, ropts)
				if err != nil {
					t.Fatalf("resume after batch %d: %v", kill, err)
				}
				if !bytes.Equal(writeBytes(t, got), wantBytes) {
					t.Fatalf("killed after batch %d: cross-mode resumed output differs", kill)
				}
			}
		})
	}
}
