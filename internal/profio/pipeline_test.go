package profio

import (
	"bytes"
	"context"
	"errors"
	"io"
	"runtime"
	"testing"
	"time"

	"aprof/internal/core"
	"aprof/internal/trace"
)

func encodeTrace(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func writeBytes(t *testing.T, ps *core.Profiles) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, ps); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestProfileStreamMatchesSequential checks the pipeline's determinism
// guarantee on random traces across batch sizes that exercise every batch
// boundary case (mid-batch EOF, exact multiple, single-event batches).
func TestProfileStreamMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		tr := trace.Random(trace.RandomConfig{Seed: seed, Ops: 700})
		want, err := core.Run(tr, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		wantBytes := writeBytes(t, want)
		enc := encodeTrace(t, tr)
		for _, opts := range []StreamOptions{
			{},
			{BatchSize: 1},
			{BatchSize: 7, Depth: 1},
			{BatchSize: tr.Len()},
			{BatchSize: 64, Depth: 8},
		} {
			got, err := ProfileStream(context.Background(), bytes.NewReader(enc), core.DefaultConfig(), opts)
			if err != nil {
				t.Fatalf("seed %d opts %+v: %v", seed, opts, err)
			}
			if !bytes.Equal(writeBytes(t, got), wantBytes) {
				t.Errorf("seed %d opts %+v: pipelined profiles differ from sequential", seed, opts)
			}
		}
	}
}

// TestProfileStreamDecodeError checks that a truncated trace surfaces the
// decoder's error.
func TestProfileStreamDecodeError(t *testing.T) {
	tr := trace.Random(trace.RandomConfig{Seed: 1, Ops: 500})
	enc := encodeTrace(t, tr)
	_, err := ProfileStream(context.Background(), bytes.NewReader(enc[:len(enc)/2]), core.DefaultConfig(), StreamOptions{BatchSize: 16})
	if err == nil {
		t.Fatal("truncated trace profiled without error")
	}
}

// TestProfileStreamProfilerErrorWins checks first-error propagation: when
// the profiler fails on an early batch the pipeline reports that error even
// though the decoder would also fail later (the stream is truncated).
func TestProfileStreamProfilerErrorWins(t *testing.T) {
	// An unbalanced return makes the profiler fail on the first event.
	b := trace.NewBuilder()
	tb := b.Thread(1)
	tb.Call("f")
	tb.Ret()
	for i := 0; i < 32; i++ {
		tb.Read1(trace.Addr(i))
	}
	tr := b.Trace()
	// Drop the call, forging a bare return followed by reads.
	tr.Events = tr.Events[1:]
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	_, err := ProfileStream(context.Background(), bytes.NewReader(enc[:len(enc)-1]), core.DefaultConfig(), StreamOptions{BatchSize: 1})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !errContains(err, "empty shadow stack") {
		t.Errorf("got decoder error %v, want the profiler's (first) error", err)
	}
}

func errContains(err error, substr string) bool {
	return err != nil && bytes.Contains([]byte(err.Error()), []byte(substr))
}

// TestProfileStreamCancellation checks that cancelling the context aborts
// the run with ctx's error.
func TestProfileStreamCancellation(t *testing.T) {
	tr := trace.Random(trace.RandomConfig{Seed: 2, Ops: 4000})
	enc := encodeTrace(t, tr)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ProfileStream(ctx, bytes.NewReader(enc), core.DefaultConfig(), StreamOptions{BatchSize: 8})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
}

// TestProfileStreamBadHeader checks header errors surface synchronously.
func TestProfileStreamBadHeader(t *testing.T) {
	_, err := ProfileStream(context.Background(), bytes.NewReader([]byte("nope")), core.DefaultConfig(), StreamOptions{})
	if err == nil {
		t.Fatal("bad magic accepted")
	}
	_, err = ProfileStream(context.Background(), bytes.NewReader(nil), core.DefaultConfig(), StreamOptions{})
	if err == nil || !errors.Is(err, io.EOF) {
		t.Fatalf("empty input: got %v, want EOF", err)
	}
}

// TestProfileStreamNoGoroutineLeak audits every pipeline exit path —
// success, decode error, profiler error, and cancellation — across batch
// sizes, checking the decoder goroutine is always joined. A leak here
// would accumulate across the many ProfileStream calls a long-lived
// ingestion service makes.
func TestProfileStreamNoGoroutineLeak(t *testing.T) {
	good := encodeTrace(t, trace.Random(trace.RandomConfig{Seed: 3, Ops: 2000}))

	// Profiler-error input: a bare return under the strict policy.
	b := trace.NewBuilder()
	tb := b.Thread(1)
	tb.Call("f")
	tb.Ret()
	tr := b.Trace()
	tr.Events = tr.Events[1:]
	var bad bytes.Buffer
	if err := trace.WriteBinary(&bad, tr); err != nil {
		t.Fatal(err)
	}

	runs := []struct {
		name string
		run  func(opts StreamOptions)
	}{
		{"success", func(opts StreamOptions) {
			if _, err := ProfileStream(context.Background(), bytes.NewReader(good), core.DefaultConfig(), opts); err != nil {
				t.Fatal(err)
			}
		}},
		{"decode error", func(opts StreamOptions) {
			if _, err := ProfileStream(context.Background(), bytes.NewReader(good[:len(good)/3]), core.DefaultConfig(), opts); err == nil {
				t.Fatal("truncated trace accepted")
			}
		}},
		{"profiler error", func(opts StreamOptions) {
			if _, err := ProfileStream(context.Background(), bytes.NewReader(bad.Bytes()), core.DefaultConfig(), opts); err == nil {
				t.Fatal("bare return accepted")
			}
		}},
		{"cancellation", func(opts StreamOptions) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := ProfileStream(ctx, bytes.NewReader(good), core.DefaultConfig(), opts); !errors.Is(err, context.Canceled) {
				t.Fatalf("got %v, want context.Canceled", err)
			}
		}},
	}

	before := runtime.NumGoroutine()
	for _, tc := range runs {
		for _, bs := range []int{1, 7, 64, 4096} {
			tc.run(StreamOptions{BatchSize: bs})
		}
	}
	// The pipeline joins its decoder before returning, so no settling time
	// should be needed; a short grace period keeps the test robust against
	// unrelated runtime goroutines winding down.
	for i := 0; ; i++ {
		if after := runtime.NumGoroutine(); after <= before {
			break
		} else if i >= 50 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, after)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
