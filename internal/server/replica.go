package server

import (
	"bufio"
	"errors"
	"net"
)

// ErrNoReplicaCheckpoint is returned by ReplicaService.Recover when no
// node — local or peer — holds a checkpoint for the session. It is the
// normal answer for a fresh session, not a failure.
var ErrNoReplicaCheckpoint = errors.New("no replica holds a checkpoint for this session")

// ReplicaService is the daemon's hook into peer-to-peer checkpoint
// replication (implemented by replica.Node; an interface here so the
// server package does not depend on the replication layer).
//
// With a ReplicaService configured the daemon runs in replicated mode:
//
//   - Replication connections (APRR protocol) are multiplexed onto the
//     ordinary listen port — the server peeks the magic and hands matching
//     connections to ServeConn.
//   - Batch acks coalesce to checkpoint boundaries, and each boundary's
//     fresh checkpoint is pushed to the session's ring successors via
//     Replicate BEFORE the ack is written. An event is never acknowledged
//     unless the checkpoint covering it is confirmed on the replica set —
//     so a node loss (disk included) after an ack can always resume from
//     a peer, byte-identically.
//   - At session start, Recover asks the replica set for the newest
//     checkpoint; a recovered checkpoint newer than the local file (if
//     any) is adopted, making failover work with no shared directory.
//   - Drop retires a completed session's replicas.
type ReplicaService interface {
	// ServeConn serves one already-peeked APRR connection until it closes.
	ServeConn(conn net.Conn, br *bufio.Reader)
	// Replicate pushes one checkpoint (seq = events delivered) to the
	// session's replica set, returning nil only once enough replicas
	// confirmed it.
	Replicate(session string, seq uint64, data []byte) error
	// Recover returns the newest replicated checkpoint for the session,
	// or ErrNoReplicaCheckpoint.
	Recover(session string) (seq uint64, data []byte, err error)
	// Drop retires the session's replicated checkpoints, best-effort.
	Drop(session string)
}
