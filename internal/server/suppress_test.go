package server_test

// Satellite proof for declared-suppressed ingest: a client that uploads a
// suppression-reduced trace (aprofsend -suppress) flags it in the
// handshake; the daemon counts it and — because suppression is proven
// output-equivalent at the tracer level — produces a profile
// byte-identical to ingesting the full per-instruction trace of the same
// workload, modulo the Events header (the one field that honestly counts
// the fed events, which suppression reduces by design — the same
// normalization the tracer-level differential harness in
// internal/vm/analysis applies).

import (
	"bytes"
	"context"
	"io"
	"testing"

	"aprof/internal/core"
	"aprof/internal/obs"
	"aprof/internal/profio"
	"aprof/internal/server"
	"aprof/internal/server/client"
	"aprof/internal/trace"
	"aprof/internal/vm"
	_ "aprof/internal/vm/analysis" // registers the effect planner Suppress needs
	"aprof/internal/workloads"
)

// normalizeEvents zeroes the Events header — the one field suppression
// legitimately changes — and re-serializes; everything else must match
// byte for byte.
func normalizeEvents(t *testing.T, doc []byte) []byte {
	t.Helper()
	ps, err := profio.Read(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("re-reading stored profile: %v", err)
	}
	ps.Events = 0
	var buf bytes.Buffer
	if err := profio.Write(&buf, ps); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeTrace(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSuppressedIngestByteIdentical(t *testing.T) {
	for _, prog := range workloads.VMPrograms() {
		prog := prog
		t.Run(prog.Name, func(t *testing.T) {
			full, err := vm.RunSource(prog.Source, vm.Options{})
			if err != nil {
				t.Fatal(err)
			}
			sup, err := vm.RunSource(prog.Source, vm.Options{Suppress: true})
			if err != nil {
				t.Fatal(err)
			}
			fullEnc := encodeTrace(t, full.Trace)
			supEnc := encodeTrace(t, sup.Trace)

			reg := obs.NewRegistry()
			s := server.New(server.Options{
				Config: core.DefaultConfig(),
				Obs:    reg,
				Logf:   t.Logf,
			})
			if err := s.Start("127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
			defer func() { s.Abort(); s.Wait() }()

			open := func(enc []byte) func() (io.ReadCloser, error) {
				return func() (io.ReadCloser, error) {
					return io.NopCloser(bytes.NewReader(enc)), nil
				}
			}
			if _, err := client.Run(context.Background(), client.Options{
				Addr: s.Addr(), SessionID: "full", Open: open(fullEnc),
			}); err != nil {
				t.Fatalf("full ingest: %v", err)
			}
			if _, err := client.Run(context.Background(), client.Options{
				Addr: s.Addr(), SessionID: "suppressed", Open: open(supEnc),
				Suppressed: true,
			}); err != nil {
				t.Fatalf("suppressed ingest: %v", err)
			}

			fullRes, ok := s.Result("full")
			if !ok {
				t.Fatal("full session has no result")
			}
			supRes, ok := s.Result("suppressed")
			if !ok {
				t.Fatal("suppressed session has no result")
			}
			if !bytes.Equal(normalizeEvents(t, fullRes.Profile), normalizeEvents(t, supRes.Profile)) {
				t.Fatalf("suppressed ingest profile differs from full ingest (%d vs %d bytes)",
					len(supRes.Profile), len(fullRes.Profile))
			}
			if got := reg.Snapshot().Scope(server.ObsScopeServer).Counter("sessions_suppressed"); got != 1 {
				t.Fatalf("sessions_suppressed = %d, want 1", got)
			}
		})
	}
}
