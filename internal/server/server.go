package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aprof/internal/core"
	"aprof/internal/obs"
	"aprof/internal/profio"
	"aprof/internal/replica/wire"
	"aprof/internal/repo"
	"aprof/internal/repo/backend"
)

// ObsScopeServer is the metric scope of the daemon: session lifecycle,
// backpressure, and failure counters surfaced through -debug-addr.
const ObsScopeServer = "server"

// Defaults for Options fields left zero.
const (
	DefaultMaxSessions  = 8
	DefaultIdleTimeout  = 30 * time.Second
	DefaultWriteTimeout = 10 * time.Second
)

// errEventLimit aborts a session that exceeded Options.MaxSessionEvents.
var errEventLimit = errors.New("server: session event limit exceeded")

// Options configures a Server. The zero value is usable: defaults above,
// no byte/event limits, no durability (no checkpoint dir), results kept
// in memory only.
type Options struct {
	// MaxSessions is the concurrent-session ceiling. Connection attempts
	// beyond the effective limit receive an explicit busy response and are
	// closed — load is shed, never queued into an unbounded backlog.
	MaxSessions int
	// Admission configures adaptive admission control beneath the
	// MaxSessions ceiling: when any of its signal thresholds is set (and
	// Obs is non-nil), the effective limit moves AIMD-style with the
	// decode-latency high-water mark and the heap estimate, degrading
	// overload to the same explicit shedding. The zero value keeps the
	// fixed semaphore.
	Admission AdmissionOptions
	// IdleTimeout is the per-read deadline on client connections. A
	// stalled or slow-loris client times out and frees its session slot
	// (with its checkpoint intact) instead of holding it forever.
	IdleTimeout time.Duration
	// WriteTimeout bounds every server→client write (responses, acks).
	WriteTimeout time.Duration
	// MaxConnBytes caps the bytes read from one connection (0 = unlimited).
	// The cap is per connection: a resumed session gets a fresh budget, so
	// a session can still finish across reconnects via its checkpoint.
	MaxConnBytes int64
	// MaxSessionEvents caps delivered events per session (0 = unlimited).
	MaxSessionEvents uint64
	// CheckpointDir, when set, makes sessions durable: each session
	// checkpoints to <dir>/<id>.apck, interrupted sessions resume from it
	// on reconnect, and a graceful drain checkpoints everything in flight.
	CheckpointDir string
	// ResultDir, when set, also writes each completed profile to
	// <dir>/<id>.json (atomically: temp file, fsync, rename).
	ResultDir string
	// Store, when set, persists each completed profile into the
	// content-addressed profile repository (chunked, deduplicated,
	// crash-safe). Result and ResultIDs then also serve sessions that only
	// exist in the store — e.g. from before a daemon restart — so the
	// /profiles/ endpoints and cluster fan-out read through it
	// transparently. The Server does not close the store.
	Store *repo.Repository
	// Config is the profiler configuration shared by all sessions. It must
	// be identical across daemon restarts for checkpoints to resume.
	Config core.Config
	// BatchSize / CheckpointEvery tune the per-session pipeline (defaults
	// as in profio).
	BatchSize       int
	CheckpointEvery int
	// Shards, when > 1, profiles each session on the sharded multi-core
	// engine (profio.StreamOptions.Shards); output and checkpoints stay
	// byte-identical to the sequential pipeline. Under sharding, batch
	// acks coalesce to window granularity (CheckpointEvery batches).
	Shards int
	// Replica, when set, switches the daemon to replicated-checkpoint mode:
	// APRR replication connections are served off the same listen port,
	// batch acks coalesce to checkpoint boundaries, every boundary's
	// checkpoint is confirmed on the session's replica set before the ack
	// is written, and session start recovers the newest replicated
	// checkpoint when the local file is missing or older — removing the
	// shared-checkpoint-directory requirement for cluster failover. With
	// Replica set and CheckpointDir empty, a private scratch directory is
	// created automatically (satisfying the durability invariant without
	// any shared disk).
	Replica ReplicaService
	// Obs receives daemon metrics under scope "server" (nil disables).
	Obs *obs.Registry
	// Logf logs daemon events (nil discards).
	Logf func(format string, args ...any)
	// OnSessionBatch, when non-nil, is called after every profiled batch
	// of every session — an operational hook (and the chaos harness's
	// panic/kill injection point). It runs on the session goroutine, so a
	// panic here exercises the session panic isolation.
	OnSessionBatch func(session string, batch int, delivered uint64)
}

// SessionResult is a completed session's outcome.
type SessionResult struct {
	ID        string `json:"id"`
	Delivered uint64 `json:"delivered"`
	Resumed   bool   `json:"resumed"`
	// Profile is the profio JSON document.
	Profile []byte `json:"-"`
}

// serverMetrics holds the pre-resolved metric handles (all nil-safe).
type serverMetrics struct {
	connsAccepted   *obs.Counter
	sessionsStarted *obs.Counter
	sessionsResumed *obs.Counter
	sessionsDone    *obs.Counter
	sessionsFailed  *obs.Counter
	sessionsDrained *obs.Counter
	sessionsShed    *obs.Counter
	probes          *obs.Counter
	panics          *obs.Counter
	ckptDiscarded   *obs.Counter
	acksSent        *obs.Counter
	bytesReceived   *obs.Counter
	suppressed      *obs.Counter
	replicaConns    *obs.Counter
	replicaPushed   *obs.Counter
	replicaFailed   *obs.Counter
	replicaAdopted  *obs.Counter
	active          *obs.Gauge
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	s := reg.Scope(ObsScopeServer)
	return serverMetrics{
		connsAccepted:   s.Counter("conns_accepted"),
		sessionsStarted: s.Counter("sessions_started"),
		sessionsResumed: s.Counter("sessions_resumed"),
		sessionsDone:    s.Counter("sessions_completed"),
		sessionsFailed:  s.Counter("sessions_failed"),
		sessionsDrained: s.Counter("sessions_drained"),
		sessionsShed:    s.Counter("sessions_shed"),
		probes:          s.Counter("probes_answered"),
		panics:          s.Counter("panics_recovered"),
		ckptDiscarded:   s.Counter("checkpoints_discarded"),
		acksSent:        s.Counter("acks_sent"),
		bytesReceived:   s.Counter("bytes_received"),
		suppressed:      s.Counter("sessions_suppressed"),
		replicaConns:    s.Counter("replica_conns"),
		replicaPushed:   s.Counter("replica_checkpoints_pushed"),
		replicaFailed:   s.Counter("replica_pushes_failed"),
		replicaAdopted:  s.Counter("replica_checkpoints_adopted"),
		active:          s.Gauge("active_sessions"),
	}
}

// Server is the aprofd trace-ingestion daemon.
type Server struct {
	opts Options
	m    serverMetrics
	adm  *admission

	ctx    context.Context // cancelled on drain/abort; parent of all sessions
	cancel context.CancelFunc

	ln       net.Listener
	wg       sync.WaitGroup
	draining atomic.Bool
	// aborted distinguishes a hard Abort (the in-process SIGKILL stand-in)
	// from a graceful drain: an aborted node must not push final
	// checkpoints — a killed process could not have either.
	aborted atomic.Bool
	// initErr, when non-nil, fails every session at the handshake: the
	// server could not establish its durability invariant (e.g. the
	// replicated-mode scratch checkpoint dir could not be created).
	initErr error

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	activeIDs map[string]struct{}
	results   map[string]*SessionResult
}

// New returns an unstarted server. Call Start (or Serve with an existing
// listener) to begin accepting.
func New(opts Options) *Server {
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = DefaultMaxSessions
	}
	if opts.IdleTimeout <= 0 {
		opts.IdleTimeout = DefaultIdleTimeout
	}
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = DefaultWriteTimeout
	}
	var initErr error
	if opts.Replica != nil && opts.CheckpointDir == "" {
		// Replicated mode keeps its durability invariant (checkpoint on
		// disk before every ack) without any shared directory: sessions
		// checkpoint into a private scratch dir and the replica set holds
		// the copies that matter. The shared-dir requirement is gone.
		dir, err := os.MkdirTemp("", "aprofd-ckpt-")
		if err != nil {
			initErr = fmt.Errorf("server: replicated mode needs a checkpoint dir and none could be created: %w", err)
		} else {
			opts.CheckpointDir = dir
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		opts:      opts,
		m:         newServerMetrics(opts.Obs),
		adm:       newAdmission(opts.MaxSessions, opts.Admission, opts.Obs),
		initErr:   initErr,
		ctx:       ctx,
		cancel:    cancel,
		conns:     make(map[net.Conn]struct{}),
		activeIDs: make(map[string]struct{}),
		results:   make(map[string]*SessionResult),
	}
}

// Start listens on addr and begins accepting connections.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.Serve(ln)
	return nil
}

// Serve begins accepting connections from ln, taking ownership of it.
// It returns immediately; use Shutdown/Abort + Wait to stop.
func (s *Server) Serve(ln net.Listener) {
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || s.ctx.Err() != nil {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			s.logf("aprofd: accept: %v", err)
			return
		}
		s.m.connsAccepted.Inc()
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// handleConn owns one connection's lifecycle. The inner closure is the
// panic isolation boundary: a panic anywhere in session handling — the
// profiler, a checkpoint write, the operational hook — is converted into a
// session error record and a log line, and the daemon keeps serving.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	func() {
		defer func() {
			if v := recover(); v != nil {
				s.m.panics.Inc()
				s.m.sessionsFailed.Inc()
				s.logf("aprofd: session panic (isolated): %v\n%s", v, debug.Stack())
				writeError(conn, s.opts.WriteTimeout, true, fmt.Sprintf("internal error: session panicked: %v", v))
			}
		}()
		s.session(conn)
	}()
}

// meteredReader counts and caps the bytes read from one connection.
type meteredReader struct {
	r       io.Reader
	n       int64
	limit   int64
	tripped bool
}

var errConnByteLimit = errors.New("server: connection byte limit exceeded")

func (m *meteredReader) Read(p []byte) (int, error) {
	if m.limit > 0 {
		remaining := m.limit - m.n
		if remaining <= 0 {
			m.tripped = true
			return 0, errConnByteLimit
		}
		if int64(len(p)) > remaining {
			p = p[:remaining]
		}
	}
	n, err := m.r.Read(p)
	m.n += int64(n)
	return n, err
}

// idleConn arms a fresh read deadline before every Read, so the allowed
// idle gap — not total session length — is bounded. Slow-loris clients
// trickling a byte per interval still make progress; silent ones time out.
type idleConn struct {
	net.Conn
	idle time.Duration
}

func (c *idleConn) Read(p []byte) (int, error) {
	if c.idle > 0 {
		c.Conn.SetReadDeadline(time.Now().Add(c.idle))
	}
	return c.Conn.Read(p)
}

// session runs the handshake and one profiling session over conn.
func (s *Server) session(conn net.Conn) {
	metered := &meteredReader{r: &idleConn{Conn: conn, idle: s.opts.IdleTimeout}, limit: s.opts.MaxConnBytes}
	defer func() { s.m.bytesReceived.Add(uint64(metered.n)) }()
	br := bufio.NewReader(metered)

	// Replication traffic shares the ingest port: the APRR magic is the
	// same length as the APRD one, so a 4-byte peek demultiplexes without
	// consuming anything. Peer transfers are exempt from the per-client
	// byte budget — a store sync is not a client upload.
	if s.opts.Replica != nil {
		if head, perr := br.Peek(len(wire.Magic)); perr == nil && string(head) == wire.Magic {
			s.m.replicaConns.Inc()
			metered.limit = 0
			s.opts.Replica.ServeConn(conn, br)
			return
		}
	}

	hs, err := readHandshake(br)
	if err != nil {
		writeResponse(conn, s.opts.WriteTimeout, StatusError, 0, err.Error())
		return
	}

	if hs.probe {
		// A liveness probe: answer and hang up. It never claims a slot, so
		// probing an overloaded node still succeeds — "full" and "down" are
		// different answers. Only a draining node refuses: it sheds every
		// new session, so routing should stop picking it.
		s.m.probes.Inc()
		if s.draining.Load() {
			writeResponse(conn, s.opts.WriteTimeout, StatusBusy, 0, "server draining")
			return
		}
		s.mu.Lock()
		active := len(s.activeIDs)
		s.mu.Unlock()
		writeResponse(conn, s.opts.WriteTimeout, StatusOK, uint64(active), "")
		return
	}

	if s.draining.Load() {
		writeResponse(conn, s.opts.WriteTimeout, StatusBusy, 0, "server draining")
		return
	}
	if s.initErr != nil {
		// The durability invariant could not be established at startup;
		// refusing sessions beats accepting them without it.
		writeResponse(conn, s.opts.WriteTimeout, StatusError, 0, s.initErr.Error())
		return
	}

	// Backpressure: one slot per session up to the admission limit, then
	// explicit shedding. A busy response costs the daemon almost nothing;
	// an unbounded accept queue under overload costs it everything — and a
	// cluster-aware client turns the busy answer into failover to the ring
	// successor instead of failure.
	if !s.acquireSlot(hs.id) {
		s.m.sessionsShed.Inc()
		writeResponse(conn, s.opts.WriteTimeout, StatusBusy, 0, "server busy")
		return
	}
	defer s.releaseSlot(hs.id)

	// Durability: adopt this session's checkpoint if one exists and is
	// usable; discard it (and start fresh) if it is corrupt or was taken
	// under a different configuration — availability over a stale file.
	var ckptPath string
	var resumeState *core.StreamState
	if s.opts.CheckpointDir != "" {
		ckptPath = filepath.Join(s.opts.CheckpointDir, hs.id+".apck")
		if f, err := os.Open(ckptPath); err == nil {
			state, rerr := core.ReadCheckpointState(f, s.opts.Config)
			f.Close()
			if rerr != nil {
				s.m.ckptDiscarded.Inc()
				s.logf("aprofd: session %s: discarding unusable checkpoint: %v", hs.id, rerr)
				os.Remove(ckptPath)
			} else {
				resumeState = &state
			}
		}
	}
	if s.opts.Replica != nil && ckptPath != "" {
		// No shared directory: a failover node (or one whose disk was
		// wiped) recovers the checkpoint from the session's replica set.
		resumeState = s.recoverFromReplicas(hs.id, ckptPath, resumeState)
	}

	status, offset := StatusOK, uint64(0)
	if resumeState != nil {
		status, offset = StatusResume, resumeState.EventsDelivered
	}
	if err := writeResponse(conn, s.opts.WriteTimeout, status, offset, ""); err != nil {
		s.m.sessionsFailed.Inc()
		return
	}

	s.m.sessionsStarted.Inc()
	if resumeState != nil {
		s.m.sessionsResumed.Inc()
	}
	if hs.suppress {
		s.m.suppressed.Inc()
	}
	s.m.active.Add(1)
	defer s.m.active.Add(-1)

	ckptEvery := s.opts.CheckpointEvery
	if ckptEvery <= 0 {
		ckptEvery = profio.DefaultCheckpointEvery
	}
	var delivered uint64
	opts := profio.StreamOptions{
		BatchSize:       s.opts.BatchSize,
		CheckpointEvery: s.opts.CheckpointEvery,
		Shards:          s.opts.Shards,
		Lenient:         hs.lenient,
		CheckpointPath:  ckptPath,
		FinalCheckpoint: ckptPath != "",
		OnBatch: func(batch int, d uint64) error {
			delivered = d
			if s.opts.OnSessionBatch != nil {
				s.opts.OnSessionBatch(hs.id, batch, d)
			}
			if s.opts.MaxSessionEvents > 0 && d > s.opts.MaxSessionEvents {
				return fmt.Errorf("%w (%d > %d)", errEventLimit, d, s.opts.MaxSessionEvents)
			}
			if s.opts.Replica != nil {
				// Replicated mode: acks coalesce to checkpoint boundaries
				// (the pipeline wrote a fresh checkpoint covering exactly d
				// events right before this callback iff batch is a
				// boundary), and the checkpoint must be confirmed on the
				// replica set BEFORE the ack goes out. An event is never
				// acknowledged unless the checkpoint covering it survives
				// the loss of this node, disk included.
				if batch%ckptEvery != 0 {
					return nil
				}
				if err := s.replicateCheckpoint(hs.id, d, ckptPath); err != nil {
					return err
				}
			}
			if err := writeAck(conn, s.opts.WriteTimeout, RecAck, d); err != nil {
				return fmt.Errorf("server: acking batch %d: %w", batch, err)
			}
			s.m.acksSent.Inc()
			return nil
		},
	}

	var ps *core.Profiles
	if resumeState != nil {
		ps, err = profio.ResumeStream(s.ctx, br, ckptPath, s.opts.Config, opts)
	} else {
		ps, err = profio.ProfileStream(s.ctx, br, s.opts.Config, opts)
	}
	if err != nil {
		if s.opts.Replica != nil && ckptPath != "" && s.ctx.Err() != nil && !s.aborted.Load() {
			// Graceful drain: the pipeline just wrote its final checkpoint;
			// push it so this node's progress survives even if its disk
			// never comes back. An Abort (the in-process SIGKILL stand-in)
			// skips this — a killed process could not have pushed, and the
			// chaos harness must not measure a fidelity the real signal
			// does not have.
			s.replicateFinal(hs.id, ckptPath)
		}
		s.failSession(conn, hs.id, metered, err)
		return
	}

	if err := s.storeResult(hs.id, ps, delivered, resumeState != nil); err != nil {
		s.m.sessionsFailed.Inc()
		s.logf("aprofd: session %s: storing result: %v", hs.id, err)
		writeError(conn, s.opts.WriteTimeout, true, fmt.Sprintf("storing result: %v", err))
		return
	}
	if ckptPath != "" {
		// The session is complete; its checkpoint is obsolete. A leftover
		// file would make a future same-id session "resume" past the end
		// of a different trace.
		os.Remove(ckptPath)
	}
	if s.opts.Replica != nil {
		// Retire the replica copies too, best-effort: a leftover replica is
		// rejected by its sequence number if the id is ever reused.
		s.opts.Replica.Drop(hs.id)
	}
	s.m.sessionsDone.Inc()
	writeAck(conn, s.opts.WriteTimeout, RecFinal, delivered)
}

// recoverFromReplicas adopts the newest replicated checkpoint when it is
// ahead of (or replaces a missing) local file. The replica's exact bytes
// are materialized as the local checkpoint, so the resume path reads
// precisely what the origin node wrote — output stays byte-identical to
// an uninterrupted run.
func (s *Server) recoverFromReplicas(id, ckptPath string, local *core.StreamState) *core.StreamState {
	seq, data, err := s.opts.Replica.Recover(id)
	switch {
	case err == nil:
	case errors.Is(err, ErrNoReplicaCheckpoint):
		return local
	default:
		s.logf("aprofd: session %s: replica recovery: %v", id, err)
		return local
	}
	if local != nil && seq <= local.EventsDelivered {
		return local
	}
	state, perr := core.ReadCheckpointState(bytes.NewReader(data), s.opts.Config)
	if perr != nil {
		s.m.ckptDiscarded.Inc()
		s.logf("aprofd: session %s: replicated checkpoint unusable: %v", id, perr)
		return local
	}
	if werr := backend.WriteAtomic(ckptPath, data, 0o644); werr != nil {
		s.logf("aprofd: session %s: writing recovered checkpoint: %v", id, werr)
		return local
	}
	s.m.replicaAdopted.Inc()
	s.logf("aprofd: session %s: recovered checkpoint from replica set (%d events)", id, state.EventsDelivered)
	return &state
}

// replicateCheckpoint pushes the just-written boundary checkpoint to the
// session's replica set. Failure fails the session transiently — the
// unconfirmed events were never acked, so a reconnect (to this node or a
// failover target) resumes from the last confirmed checkpoint.
func (s *Server) replicateCheckpoint(id string, delivered uint64, ckptPath string) error {
	data, err := os.ReadFile(ckptPath)
	if err != nil {
		s.m.replicaFailed.Inc()
		return fmt.Errorf("server: reading checkpoint for replication: %w", err)
	}
	if err := s.opts.Replica.Replicate(id, delivered, data); err != nil {
		s.m.replicaFailed.Inc()
		return fmt.Errorf("server: replicating checkpoint at %d events: %w", delivered, err)
	}
	s.m.replicaPushed.Inc()
	return nil
}

// replicateFinal pushes the drain-time final checkpoint, best-effort: the
// session already failed transiently, so a push failure costs nothing
// beyond resuming from an earlier boundary.
func (s *Server) replicateFinal(id, ckptPath string) {
	data, err := os.ReadFile(ckptPath)
	if err != nil {
		return
	}
	state, err := core.ReadCheckpointState(bytes.NewReader(data), s.opts.Config)
	if err != nil {
		return
	}
	if err := s.opts.Replica.Replicate(id, state.EventsDelivered, data); err != nil {
		s.m.replicaFailed.Inc()
		s.logf("aprofd: session %s: replicating drain checkpoint: %v", id, err)
		return
	}
	s.m.replicaPushed.Inc()
}

// failSession classifies a session error, records metrics, and tells the
// client whether reconnecting (to resume from the checkpoint) can help.
func (s *Server) failSession(conn net.Conn, id string, metered *meteredReader, err error) {
	switch {
	case s.ctx.Err() != nil:
		// Drain: the pipeline already wrote the final checkpoint.
		s.m.sessionsDrained.Inc()
		s.logf("aprofd: session %s: drained at checkpoint", id)
		writeError(conn, s.opts.WriteTimeout, true, "server draining; reconnect to resume")
	case errors.Is(err, errEventLimit):
		s.m.sessionsFailed.Inc()
		writeError(conn, s.opts.WriteTimeout, false, err.Error())
	case metered.tripped:
		// The byte budget is per connection and progress is checkpointed,
		// so a reconnect may still finish the session: transient.
		s.m.sessionsFailed.Inc()
		writeError(conn, s.opts.WriteTimeout, true, fmt.Sprintf("connection byte limit exceeded after %d bytes", metered.n))
	default:
		s.m.sessionsFailed.Inc()
		s.logf("aprofd: session %s: %v", id, err)
		writeError(conn, s.opts.WriteTimeout, true, err.Error())
	}
}

// acquireSlot claims a session slot and the session id, atomically. The
// admission controller decides how many slots currently exist.
func (s *Server) acquireSlot(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.adm.admit(len(s.activeIDs)) {
		return false
	}
	if _, busy := s.activeIDs[id]; busy {
		// Two live connections for one id would race on one checkpoint
		// file; the newcomer is shed like any overload.
		return false
	}
	s.activeIDs[id] = struct{}{}
	return true
}

func (s *Server) releaseSlot(id string) {
	s.mu.Lock()
	delete(s.activeIDs, id)
	s.mu.Unlock()
}

// storeResult serializes and retains a completed session's profile.
func (s *Server) storeResult(id string, ps *core.Profiles, delivered uint64, resumed bool) error {
	var buf strings.Builder
	if err := profio.Write(&buf, ps); err != nil {
		return err
	}
	res := &SessionResult{ID: id, Delivered: delivered, Resumed: resumed, Profile: []byte(buf.String())}
	s.mu.Lock()
	s.results[id] = res
	s.mu.Unlock()
	if s.opts.ResultDir != "" {
		path := filepath.Join(s.opts.ResultDir, id+".json")
		if err := backend.WriteAtomic(path, res.Profile, 0o644); err != nil {
			return err
		}
	}
	if s.opts.Store != nil {
		if err := s.opts.Store.SaveProfile(id, res.Profile); err != nil {
			return err
		}
	}
	return nil
}

// ActiveSessions reports the number of sessions currently in flight.
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.activeIDs)
}

// Result returns a completed session's outcome. With Options.Store set,
// sessions that only exist in the repository (e.g. completed before a
// daemon restart) are served from it; their Delivered/Resumed metadata is
// zero — only this process's own sessions carry it.
func (s *Server) Result(id string) (*SessionResult, bool) {
	s.mu.Lock()
	r, ok := s.results[id]
	s.mu.Unlock()
	if ok || s.opts.Store == nil {
		return r, ok
	}
	profile, err := s.opts.Store.GetSession(id)
	if err != nil {
		return nil, false
	}
	return &SessionResult{ID: id, Profile: profile}, true
}

// ResultIDs lists completed sessions in lexical order: this process's
// results merged with the profile repository's, when one is configured.
func (s *Server) ResultIDs() []string {
	s.mu.Lock()
	seen := make(map[string]struct{}, len(s.results))
	for id := range s.results {
		seen[id] = struct{}{}
	}
	s.mu.Unlock()
	if s.opts.Store != nil {
		for _, id := range s.opts.Store.SessionIDs() {
			seen[id] = struct{}{}
		}
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ProfilesHandler serves completed profiles over HTTP: an index of session
// ids at the mount point, a session's profile JSON beneath it. Mount at
// "/profiles/" on the debug mux.
func (s *Server) ProfilesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/profiles/")
		id = strings.Trim(id, "/")
		w.Header().Set("Content-Type", "application/json")
		if id == "" {
			index := struct {
				Sessions []string `json:"sessions"`
			}{Sessions: s.ResultIDs()}
			json.NewEncoder(w).Encode(index)
			return
		}
		res, ok := s.Result(id)
		if !ok {
			http.Error(w, fmt.Sprintf(`{"error": "no profile for session %q"}`, id), http.StatusNotFound)
			return
		}
		w.Write(res.Profile)
	})
}

// Shutdown drains the daemon gracefully: stop accepting, cancel every
// session context (each pipeline stops at its next batch boundary and
// writes a final checkpoint), and nudge blocked reads awake. It waits for
// all sessions to finish until ctx expires, then force-closes the
// stragglers' connections (their periodic/final checkpoints still bound
// the loss to the last profiled batch).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	s.cancel()
	// A session blocked in conn.Read cannot observe the cancelled context;
	// expiring its read deadline turns the block into a timely error while
	// keeping the conn writable for the "draining" error record.
	s.mu.Lock()
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.closeConns()
		<-done
		return ctx.Err()
	}
}

// Abort hard-stops the daemon: no drain notifications, connections closed
// immediately — the in-process stand-in for SIGKILL. Sessions lose nothing
// past their last written checkpoint. Safe to call from any goroutine,
// including a session's own hooks; it does not wait (use Wait).
func (s *Server) Abort() {
	s.aborted.Store(true)
	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	s.cancel()
	s.closeConns()
}

// Wait blocks until the accept loop and all sessions have finished.
func (s *Server) Wait() {
	s.wg.Wait()
}

func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		conn.Close()
	}
}
