package client

// ClusterDialer routes one session's connections across an aprofd cluster.
// The session id hashes onto the consistent-hash ring, which yields a
// deterministic failover sequence (owner, successor, successor's
// successor, ...); the dialer walks it in response to what each attempt
// reported:
//
//   - connect error       -> the node is unreachable: eject it from the
//     health view and try the next candidate inside the same DialContext
//     call — a dead node costs one dial, not one backoff cycle.
//   - busy-shed handshake -> the node is healthy but full or draining:
//     move to the successor immediately. Admission-control shedding is the
//     cluster telling the client where not to be.
//   - mid-stream failure  -> retry the same node first: it holds the
//     session's checkpoint, so staying put resumes from the highest acked
//     offset. Only after FailoverAfter consecutive failures is the node
//     abandoned for its successor (where, with a shared checkpoint
//     directory, the session still resumes from the acked offset).
//
// Wherever the session lands, resume-by-resend replays the exact event
// prefix the adopted checkpoint accounts for, so the final profile is
// byte-identical to an uninterrupted single-node run.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"aprof/internal/cluster"
)

// DefaultFailoverAfter is how many consecutive mid-stream failures on one
// node the dialer tolerates before moving to the ring successor.
const DefaultFailoverAfter = 3

// ClusterOptions configures a ClusterDialer.
type ClusterOptions struct {
	// Nodes is the static member list: each node's APRD TCP address.
	Nodes []string
	// SessionID is the routing key; it must match Options.SessionID of the
	// Run call this dialer feeds.
	SessionID string
	// VirtualNodes tunes the ring (default cluster.DefaultVirtualNodes).
	VirtualNodes int
	// Health, when non-nil, supplies the liveness view consulted before
	// dialing and receives connect-failure reports. Run cluster.NewHealth
	// probers over the same node list to keep it current.
	Health *cluster.Health
	// FailoverAfter is the consecutive mid-stream failure tolerance per
	// node (default DefaultFailoverAfter).
	FailoverAfter int
	// DialNode replaces the default TCP dial of one node — the chaos
	// harness's injection point.
	DialNode func(ctx context.Context, addr string) (net.Conn, error)
	// Logf logs routing decisions (nil discards).
	Logf func(format string, args ...any)
}

// ClusterDialer implements ConnDialer and AttemptObserver over a node
// ring. Use one per Run call: it carries per-session routing state.
type ClusterDialer struct {
	opts ClusterOptions
	seq  []string // failover order for this session, owner first

	mu             sync.Mutex
	cur            int // index into seq currently preferred
	streamFailures int // consecutive mid-stream failures on seq[cur]
}

// NewClusterDialer builds the routing dialer for one session.
func NewClusterDialer(opts ClusterOptions) (*ClusterDialer, error) {
	ring, err := cluster.NewRing(opts.Nodes, opts.VirtualNodes)
	if err != nil {
		return nil, err
	}
	if opts.SessionID == "" {
		return nil, errors.New("client: ClusterOptions.SessionID is required")
	}
	if opts.FailoverAfter <= 0 {
		opts.FailoverAfter = DefaultFailoverAfter
	}
	if opts.DialNode == nil {
		opts.DialNode = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	return &ClusterDialer{opts: opts, seq: ring.Sequence(opts.SessionID)}, nil
}

// Node returns the currently preferred node for the session.
func (d *ClusterDialer) Node() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq[d.cur]
}

// Owner returns the session's ring owner (the first-choice node).
func (d *ClusterDialer) Owner() string { return d.seq[0] }

// DialContext connects to the preferred node, walking the failover
// sequence past nodes that refuse the connection. Known-dead nodes are
// skipped unless every node is presumed dead — then everything is tried,
// because a stale health view must degrade to extra dials, not an outage.
func (d *ClusterDialer) DialContext(ctx context.Context) (net.Conn, error) {
	d.mu.Lock()
	start := d.cur
	d.mu.Unlock()

	var lastErr error
	skipped := 0
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < len(d.seq); i++ {
			idx := (start + i) % len(d.seq)
			addr := d.seq[idx]
			// First pass honors the health view; the desperation pass (only
			// reached when the first yielded nothing but skips) tries
			// everything.
			if pass == 0 && d.opts.Health != nil && !d.opts.Health.Alive(addr) {
				skipped++
				continue
			}
			conn, err := d.opts.DialNode(ctx, addr)
			if err != nil {
				lastErr = err
				if d.opts.Health != nil {
					d.opts.Health.ReportFailure(addr)
				}
				d.opts.Logf("aprof client: node %s unreachable: %v", addr, err)
				continue
			}
			d.mu.Lock()
			if d.cur != idx {
				d.opts.Logf("aprof client: session %s routed to %s", d.opts.SessionID, addr)
				d.cur = idx
				d.streamFailures = 0
			}
			d.mu.Unlock()
			return conn, nil
		}
		if skipped == 0 || lastErr != nil {
			break
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("client: no cluster node reachable for session %s", d.opts.SessionID)
	}
	return nil, lastErr
}

// AttemptResult receives the classified outcome of each Run attempt and
// moves the preference accordingly.
func (d *ClusterDialer) AttemptResult(err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case err == nil:
		d.streamFailures = 0
	case errors.Is(err, ErrPermanent):
		// Routing cannot fix a rejected session.
	case errors.Is(err, ErrBusy):
		// The node shed us by design; its successor is the deterministic
		// second choice every other participant would also compute.
		d.opts.Logf("aprof client: node %s shed session %s; failing over", d.seq[d.cur], d.opts.SessionID)
		d.advanceLocked()
	default:
		// Mid-stream transient: prefer the checkpoint locality of the
		// current node until it proves persistently broken.
		d.streamFailures++
		if d.streamFailures >= d.opts.FailoverAfter {
			d.opts.Logf("aprof client: node %s failed %d attempts for session %s; failing over",
				d.seq[d.cur], d.streamFailures, d.opts.SessionID)
			d.advanceLocked()
		}
	}
}

// advanceLocked moves the preference to the ring successor. Callers hold
// d.mu.
func (d *ClusterDialer) advanceLocked() {
	d.cur = (d.cur + 1) % len(d.seq)
	d.streamFailures = 0
}
