// Package client implements the aprofd trace-upload client: it streams an
// APT2 trace to a daemon and survives the network not cooperating. A torn
// connection, a busy server, or a draining server all lead to the same
// place — reconnect with capped exponential backoff and deterministic
// jitter, learn the server's checkpointed resume offset from the
// handshake, and resend; the server skips the acknowledged prefix, so the
// upload finishes exactly once no matter how many times the link dies.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"aprof/internal/server"
)

// Defaults for Options fields left zero.
const (
	DefaultMaxAttempts = 8
	DefaultBackoff     = 100 * time.Millisecond
)

// ErrPermanent wraps server rejections that reconnecting cannot fix (bad
// handshake, event limit, config mismatch). Run gives up immediately.
var ErrPermanent = errors.New("client: permanent server error")

// Options configures one upload.
type Options struct {
	// Addr is the daemon's TCP address (ignored when Dial is set).
	Addr string
	// SessionID names the session; the server keys checkpoints, resume
	// state, and results by it. Must satisfy server.ValidSessionID.
	SessionID string
	// Lenient asks the server to decode the trace leniently.
	Lenient bool
	// Open returns a fresh reader over the trace from byte zero. It is
	// called once per connection attempt: resume-by-resend needs a
	// restartable source, not a one-shot stream.
	Open func() (io.ReadCloser, error)
	// MaxAttempts bounds consecutive failed attempts (default 8). Any
	// acknowledged progress resets the counter — a link that keeps dying
	// but keeps advancing is slow, not down.
	MaxAttempts int
	// Backoff is the base of the capped exponential retry schedule:
	// consecutive failure k waits Backoff*2^(k-1) (default 100ms).
	Backoff time.Duration
	// MaxBackoff caps the delay (default 32*Backoff).
	MaxBackoff time.Duration
	// Jitter spreads each delay by ±Jitter (fraction in [0,1]) of nominal,
	// drawn deterministically from Seed.
	Jitter float64
	// Seed seeds the jitter stream.
	Seed int64
	// Dial replaces the default TCP dial — the chaos harness's injection
	// point for misbehaving connections.
	Dial func(ctx context.Context) (net.Conn, error)
	// Logf logs attempt-level events (nil discards).
	Logf func(format string, args ...any)
}

// Result summarizes a completed upload.
type Result struct {
	// Delivered is the server's final cumulative delivered-event count.
	Delivered uint64
	// Acks counts batch acknowledgements received across all connections.
	Acks int
	// Reconnects counts connection attempts after the first.
	Reconnects int
	// ResumedFrom is the largest checkpoint offset the server reported
	// resuming from (0 if every attempt started fresh).
	ResumedFrom uint64
}

// errBusy marks a shed connection (server at capacity or draining): always
// worth retrying, never counts as the server being broken.
var errBusy = errors.New("client: server busy")

// Run uploads the trace, reconnecting until the server reports the session
// complete, ctx is cancelled, MaxAttempts consecutive attempts fail, or
// the server rejects the session permanently.
func Run(ctx context.Context, opts Options) (Result, error) {
	var res Result
	if opts.Open == nil {
		return res, errors.New("client: Options.Open is required")
	}
	if !server.ValidSessionID(opts.SessionID) {
		return res, fmt.Errorf("%w: invalid session id %q", ErrPermanent, opts.SessionID)
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	if opts.Backoff <= 0 {
		opts.Backoff = DefaultBackoff
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 32 * opts.Backoff
	}
	if opts.Dial == nil {
		opts.Dial = func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", opts.Addr)
		}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	failures := 0
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			res.Reconnects++
			if err := backoffWait(ctx, rng, opts, failures); err != nil {
				return res, errors.Join(err, lastErr)
			}
		}
		if err := ctx.Err(); err != nil {
			return res, errors.Join(err, lastErr)
		}

		progressed, done, err := attemptOnce(ctx, opts, &res)
		if done {
			return res, nil
		}
		if errors.Is(err, ErrPermanent) {
			return res, err
		}
		lastErr = err
		if progressed {
			// The server acknowledged new batches this attempt: the link is
			// lossy, not dead. Start the failure budget over.
			failures = 0
		}
		failures++
		logf("aprof client: attempt %d failed (%d consecutive): %v", attempt+1, failures, err)
		if failures >= opts.MaxAttempts {
			return res, fmt.Errorf("client: %d consecutive attempts failed: %w", failures, lastErr)
		}
	}
}

// backoffWait sleeps the jittered exponential delay for the given count of
// consecutive failures, interruptibly.
func backoffWait(ctx context.Context, rng *rand.Rand, opts Options, failures int) error {
	d := opts.Backoff
	for i := 1; i < failures && d < opts.MaxBackoff; i++ {
		d *= 2
	}
	if d > opts.MaxBackoff {
		d = opts.MaxBackoff
	}
	if opts.Jitter > 0 {
		frac := (rng.Float64()*2 - 1) * opts.Jitter
		d += time.Duration(float64(d) * frac)
		if d < 0 {
			d = 0
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// attemptOnce runs one full connection attempt. progressed reports whether
// the server acknowledged new events; done reports session completion.
func attemptOnce(ctx context.Context, opts Options, res *Result) (progressed, done bool, err error) {
	conn, err := opts.Dial(ctx)
	if err != nil {
		return false, false, fmt.Errorf("client: dial: %w", err)
	}
	defer conn.Close()
	// Cancellation must interrupt blocked reads/writes on this conn, not
	// just be noticed between them.
	stopCancel := context.AfterFunc(ctx, func() { conn.Close() })
	defer stopCancel()

	if _, err := conn.Write(server.AppendHandshake(nil, opts.SessionID, opts.Lenient)); err != nil {
		return false, false, fmt.Errorf("client: sending handshake: %w", err)
	}
	br := bufio.NewReader(conn)
	resp, err := server.ReadResponse(br)
	if err != nil {
		return false, false, fmt.Errorf("client: reading handshake response: %w", err)
	}
	switch {
	case resp.Status == server.StatusBusy:
		return false, false, fmt.Errorf("%w: %s", errBusy, resp.Msg)
	case resp.Status == server.StatusError:
		return false, false, fmt.Errorf("%w: handshake rejected: %s", ErrPermanent, resp.Msg)
	case resp.Status == server.StatusResume:
		if resp.ResumeOffset > res.ResumedFrom {
			res.ResumedFrom = resp.ResumeOffset
		}
	}

	src, err := opts.Open()
	if err != nil {
		return false, false, fmt.Errorf("%w: opening trace source: %v", ErrPermanent, err)
	}
	defer src.Close()

	// The trace streams up while records stream down. The sender's error is
	// secondary: if the server failed, the record loop learns why; if the
	// link died, both sides fail and the record error is as good.
	sendDone := make(chan error, 1)
	go func() {
		_, err := io.Copy(conn, src)
		if err == nil {
			// Half-close tells the server the trace is complete while
			// leaving the record stream open.
			type closeWriter interface{ CloseWrite() error }
			if cw, ok := conn.(closeWriter); ok {
				cw.CloseWrite()
			}
		}
		sendDone <- err
	}()
	defer func() { <-sendDone }() // conn.Close above unblocks the sender

	for {
		rec, rerr := server.ReadRecord(br)
		if rerr != nil {
			if ctx.Err() != nil {
				return progressed, false, ctx.Err()
			}
			return progressed, false, fmt.Errorf("client: connection lost: %w", rerr)
		}
		switch rec.Kind {
		case server.RecAck:
			res.Acks++
			if rec.Delivered > res.Delivered {
				res.Delivered = rec.Delivered
				progressed = true
			}
		case server.RecFinal:
			if rec.Delivered > res.Delivered {
				res.Delivered = rec.Delivered
			}
			return progressed, true, nil
		case server.RecError:
			if rec.Transient {
				return progressed, false, fmt.Errorf("client: server error (transient): %s", rec.Msg)
			}
			return progressed, false, fmt.Errorf("%w: %s", ErrPermanent, rec.Msg)
		}
	}
}
