// Package client implements the aprofd trace-upload client: it streams an
// APT2 trace to a daemon and survives the network not cooperating. A torn
// connection, a busy server, or a draining server all lead to the same
// place — reconnect with capped exponential backoff and deterministic
// jitter, learn the server's checkpointed resume offset from the
// handshake, and resend; the server skips the acknowledged prefix, so the
// upload finishes exactly once no matter how many times the link dies.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"aprof/internal/server"
)

// Defaults for Options fields left zero.
const (
	DefaultMaxAttempts = 8
	DefaultBackoff     = 100 * time.Millisecond
	// DefaultBusyAttemptFactor scales MaxAttempts into the default busy
	// budget: busy-shed is the server working as designed under load, so
	// it deserves a much longer leash than genuine failures.
	DefaultBusyAttemptFactor = 4
)

// ErrPermanent wraps server rejections that reconnecting cannot fix (bad
// handshake, event limit, config mismatch). Run gives up immediately.
var ErrPermanent = errors.New("client: permanent server error")

// ErrBusy marks a shed connection: the server is at its admission limit,
// the session id is already active, or the daemon is draining. Busy is
// transient by construction — the daemon shed exactly so that a later (or
// differently-routed) attempt can succeed — so Run retries it under its
// own MaxBusyAttempts budget with capped backoff instead of burning the
// failure budget, and a ClusterDialer fails the session over to the ring
// successor.
var ErrBusy = errors.New("client: server busy")

// Options configures one upload.
type Options struct {
	// Addr is the daemon's TCP address (ignored when Dial is set).
	Addr string
	// SessionID names the session; the server keys checkpoints, resume
	// state, and results by it. Must satisfy server.ValidSessionID.
	SessionID string
	// Lenient asks the server to decode the trace leniently.
	Lenient bool
	// Suppressed declares the trace was recorded with effect-based
	// instrumentation suppression (vm.Options.Suppress). The profile is
	// identical either way; the server counts suppressed sessions in its
	// metrics.
	Suppressed bool
	// Open returns a fresh reader over the trace from byte zero. It is
	// called once per connection attempt: resume-by-resend needs a
	// restartable source, not a one-shot stream.
	Open func() (io.ReadCloser, error)
	// MaxAttempts bounds consecutive failed attempts (default 8). Any
	// acknowledged progress resets the counter — a link that keeps dying
	// but keeps advancing is slow, not down. Busy-shed responses do not
	// count here; they have their own MaxBusyAttempts budget.
	MaxAttempts int
	// MaxBusyAttempts bounds consecutive busy-shed attempts (default
	// DefaultBusyAttemptFactor x MaxAttempts). A busy answer means the
	// server is healthy but full (or draining): it used to share — and
	// routinely exhaust — the failure budget, turning a transient overload
	// into a permanent-looking client error. Progress resets this counter
	// too.
	MaxBusyAttempts int
	// Backoff is the base of the capped exponential retry schedule:
	// consecutive failure k waits Backoff*2^(k-1) (default 100ms).
	Backoff time.Duration
	// MaxBackoff caps the delay (default 32*Backoff).
	MaxBackoff time.Duration
	// Jitter spreads each delay by ±Jitter (fraction in [0,1]) of nominal,
	// drawn deterministically from Seed.
	Jitter float64
	// Seed seeds the jitter stream.
	Seed int64
	// Dial replaces the default TCP dial — the chaos harness's injection
	// point for misbehaving connections. Takes precedence over Dialer.
	Dial func(ctx context.Context) (net.Conn, error)
	// Dialer, when non-nil (and Dial is nil), supplies connections from a
	// stateful source — a ClusterDialer routing by session id. If it also
	// implements AttemptObserver, Run reports every attempt's classified
	// outcome back to it, which is how failover decisions (busy → ring
	// successor, repeated resets → give the node up) are made.
	Dialer ConnDialer
	// Logf logs attempt-level events (nil discards).
	Logf func(format string, args ...any)
}

// Result summarizes a completed upload.
type Result struct {
	// Delivered is the server's final cumulative delivered-event count.
	Delivered uint64
	// Acks counts batch acknowledgements received across all connections.
	Acks int
	// Reconnects counts connection attempts after the first.
	Reconnects int
	// ResumedFrom is the largest checkpoint offset the server reported
	// resuming from (0 if every attempt started fresh).
	ResumedFrom uint64
}

// ConnDialer is a stateful connection source (see Options.Dialer).
type ConnDialer interface {
	DialContext(ctx context.Context) (net.Conn, error)
}

// AttemptObserver is optionally implemented by a ConnDialer that wants
// attempt feedback. Run calls AttemptResult after every connection
// attempt with nil on session completion, or the attempt's error —
// ErrBusy for a shed handshake, an error wrapping ErrPermanent for a
// rejection, anything else for a transient failure. A routing dialer uses
// the classification to decide whether the next DialContext should target
// the same node or its ring successor.
type AttemptObserver interface {
	AttemptResult(err error)
}

// Run uploads the trace, reconnecting until the server reports the session
// complete, ctx is cancelled, the relevant attempt budget is exhausted, or
// the server rejects the session permanently.
func Run(ctx context.Context, opts Options) (Result, error) {
	var res Result
	if opts.Open == nil {
		return res, errors.New("client: Options.Open is required")
	}
	if !server.ValidSessionID(opts.SessionID) {
		return res, fmt.Errorf("%w: invalid session id %q", ErrPermanent, opts.SessionID)
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	if opts.MaxBusyAttempts <= 0 {
		opts.MaxBusyAttempts = DefaultBusyAttemptFactor * opts.MaxAttempts
	}
	if opts.Backoff <= 0 {
		opts.Backoff = DefaultBackoff
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 32 * opts.Backoff
	}
	if opts.Dial == nil {
		if opts.Dialer != nil {
			opts.Dial = opts.Dialer.DialContext
		} else {
			opts.Dial = func(ctx context.Context) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, "tcp", opts.Addr)
			}
		}
	}
	var observe func(error)
	if obs, ok := opts.Dialer.(AttemptObserver); ok {
		observe = obs.AttemptResult
	} else {
		observe = func(error) {}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	failures, busy := 0, 0
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			res.Reconnects++
			if err := backoffWait(ctx, rng, opts, failures+busy); err != nil {
				return res, errors.Join(err, lastErr)
			}
		}
		if err := ctx.Err(); err != nil {
			return res, errors.Join(err, lastErr)
		}

		progressed, done, err := attemptOnce(ctx, opts, &res)
		if done {
			observe(nil)
			return res, nil
		}
		observe(err)
		if errors.Is(err, ErrPermanent) {
			return res, err
		}
		lastErr = err
		if progressed {
			// The server acknowledged new batches this attempt: the link is
			// lossy, not dead. Start both budgets over.
			failures, busy = 0, 0
		}
		if errors.Is(err, ErrBusy) {
			// Shed, not broken: the server (or its admission controller)
			// chose to turn this attempt away. Retry on the dedicated busy
			// budget so sustained-but-finite overload cannot exhaust the
			// failure budget meant for real breakage.
			busy++
			logf("aprof client: attempt %d shed (%d consecutive busy): %v", attempt+1, busy, err)
			if busy >= opts.MaxBusyAttempts {
				return res, fmt.Errorf("client: shed %d consecutive times: %w", busy, lastErr)
			}
			continue
		}
		failures++
		logf("aprof client: attempt %d failed (%d consecutive): %v", attempt+1, failures, err)
		if failures >= opts.MaxAttempts {
			return res, fmt.Errorf("client: %d consecutive attempts failed: %w", failures, lastErr)
		}
	}
}

// backoffWait sleeps the jittered exponential delay for the given count of
// consecutive failures, interruptibly.
func backoffWait(ctx context.Context, rng *rand.Rand, opts Options, failures int) error {
	d := opts.Backoff
	for i := 1; i < failures && d < opts.MaxBackoff; i++ {
		d *= 2
	}
	if d > opts.MaxBackoff {
		d = opts.MaxBackoff
	}
	if opts.Jitter > 0 {
		frac := (rng.Float64()*2 - 1) * opts.Jitter
		d += time.Duration(float64(d) * frac)
		if d < 0 {
			d = 0
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// attemptOnce runs one full connection attempt. progressed reports whether
// the server acknowledged new events; done reports session completion.
func attemptOnce(ctx context.Context, opts Options, res *Result) (progressed, done bool, err error) {
	conn, err := opts.Dial(ctx)
	if err != nil {
		return false, false, fmt.Errorf("client: dial: %w", err)
	}
	defer conn.Close()
	// Cancellation must interrupt blocked reads/writes on this conn, not
	// just be noticed between them.
	stopCancel := context.AfterFunc(ctx, func() { conn.Close() })
	defer stopCancel()

	if _, err := conn.Write(server.AppendHandshake(nil, opts.SessionID, opts.Lenient, opts.Suppressed)); err != nil {
		return false, false, fmt.Errorf("client: sending handshake: %w", err)
	}
	br := bufio.NewReader(conn)
	resp, err := server.ReadResponse(br)
	if err != nil {
		return false, false, fmt.Errorf("client: reading handshake response: %w", err)
	}
	switch {
	case resp.Status == server.StatusBusy:
		return false, false, fmt.Errorf("%w: %s", ErrBusy, resp.Msg)
	case resp.Status == server.StatusError:
		return false, false, fmt.Errorf("%w: handshake rejected: %s", ErrPermanent, resp.Msg)
	case resp.Status == server.StatusResume:
		if resp.ResumeOffset > res.ResumedFrom {
			res.ResumedFrom = resp.ResumeOffset
		}
	}

	src, err := opts.Open()
	if err != nil {
		return false, false, fmt.Errorf("%w: opening trace source: %v", ErrPermanent, err)
	}
	defer src.Close()

	// The trace streams up while records stream down. The sender's error is
	// secondary: if the server failed, the record loop learns why; if the
	// link died, both sides fail and the record error is as good.
	sendDone := make(chan error, 1)
	go func() {
		_, err := io.Copy(conn, src)
		if err == nil {
			// Half-close tells the server the trace is complete while
			// leaving the record stream open.
			type closeWriter interface{ CloseWrite() error }
			if cw, ok := conn.(closeWriter); ok {
				cw.CloseWrite()
			}
		}
		sendDone <- err
	}()
	defer func() { <-sendDone }() // conn.Close above unblocks the sender

	for {
		rec, rerr := server.ReadRecord(br)
		if rerr != nil {
			if ctx.Err() != nil {
				return progressed, false, ctx.Err()
			}
			return progressed, false, fmt.Errorf("client: connection lost: %w", rerr)
		}
		switch rec.Kind {
		case server.RecAck:
			res.Acks++
			if rec.Delivered > res.Delivered {
				res.Delivered = rec.Delivered
				progressed = true
			}
		case server.RecFinal:
			if rec.Delivered > res.Delivered {
				res.Delivered = rec.Delivered
			}
			return progressed, true, nil
		case server.RecError:
			if rec.Transient {
				return progressed, false, fmt.Errorf("client: server error (transient): %s", rec.Msg)
			}
			return progressed, false, fmt.Errorf("%w: %s", ErrPermanent, rec.Msg)
		}
	}
}
