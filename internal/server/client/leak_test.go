package client_test

// Resource-leak audit for every client failover path. Each scenario runs
// the full client loop through one failure shape — connect refusal,
// mid-stream reset, busy-shed exhaustion, and a cluster drain handover —
// and then requires the process back at its goroutine and file-descriptor
// baselines. The paths that give up (refusal, shed) matter as much as the
// ones that succeed: an abandoned attempt that forgets its sender
// goroutine or its socket turns a retry loop into a slow leak.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aprof/internal/core"
	"aprof/internal/faultio"
	"aprof/internal/profio"
	"aprof/internal/server"
	"aprof/internal/server/client"
	"aprof/internal/trace"
)

// testTrace encodes a random trace to APT2 bytes.
func testTrace(t *testing.T, seed int64, ops int) []byte {
	t.Helper()
	tr := trace.Random(trace.RandomConfig{Seed: seed, Ops: ops, Threads: 3})
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// offlineProfile runs the offline pipeline over enc.
func offlineProfile(t *testing.T, enc []byte) []byte {
	t.Helper()
	ps, err := profio.ProfileStream(context.Background(), bytes.NewReader(enc), core.DefaultConfig(), profio.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := profio.Write(&buf, ps); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// opener adapts trace bytes to the client's restartable source.
func opener(enc []byte) func() (io.ReadCloser, error) {
	return func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(enc)), nil
	}
}

// startNode starts one daemon with test defaults.
func startNode(t *testing.T, opts server.Options) *server.Server {
	t.Helper()
	if opts.Config.CounterLimit == 0 {
		opts.Config = core.DefaultConfig()
	}
	if opts.BatchSize == 0 {
		opts.BatchSize = 16
	}
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = 4
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	s := server.New(opts)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Abort()
		s.Wait()
	})
	return s
}

// fdCount counts this process's open file descriptors via /proc. Sockets
// in TIME_WAIT are kernel state, not descriptors, so a clean close settles
// the count immediately.
func fdCount(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd on this platform: %v", err)
	}
	return len(ents)
}

// audit runs fn between baseline captures and polls both counts back down.
// The poll absorbs the teardown latency of server-side session goroutines;
// what must not remain is anything owned by the client.
func audit(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	goroutines := runtime.NumGoroutine()
	fds := fdCount(t)

	fn(t)

	deadline := time.Now().Add(2 * time.Second)
	for {
		g, f := runtime.NumGoroutine(), fdCount(t)
		if g <= goroutines && f <= fds {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak: goroutines %d -> %d, fds %d -> %d", goroutines, g, fds, f)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLeakAuditConnectFail: every node refuses the connection; the dialer
// walks the whole ring per attempt and the run fails — with nothing left
// behind for any of the failed dials.
func TestLeakAuditConnectFail(t *testing.T) {
	enc := testTrace(t, 60, 300)
	// Grab real loopback ports and close them so the addresses refuse.
	dead := make([]string, 2)
	for i := range dead {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		dead[i] = l.Addr().String()
		l.Close()
	}
	audit(t, func(t *testing.T) {
		cd, err := client.NewClusterDialer(client.ClusterOptions{
			Nodes: dead, SessionID: "nowhere",
		})
		if err != nil {
			t.Fatal(err)
		}
		_, err = client.Run(context.Background(), client.Options{
			SessionID: "nowhere", Open: opener(enc), Dialer: cd,
			MaxAttempts: 2, Backoff: time.Millisecond,
		})
		if err == nil {
			t.Fatal("run against refused addresses succeeded")
		}
	})
}

// TestLeakAuditMidStreamReset: connections die mid-frame until the resend
// protocol pushes the session through; every torn attempt's sender
// goroutine and socket must be reclaimed along the way.
func TestLeakAuditMidStreamReset(t *testing.T) {
	enc := testTrace(t, 61, 700)
	want := offlineProfile(t, enc)
	s := startNode(t, server.Options{CheckpointDir: t.TempDir()})

	audit(t, func(t *testing.T) {
		var attempt int64
		res, err := client.Run(context.Background(), client.Options{
			SessionID: "torn", Open: opener(enc),
			Dial: func(ctx context.Context) (net.Conn, error) {
				attempt++
				var d net.Dialer
				conn, err := d.DialContext(ctx, "tcp", s.Addr())
				if err != nil {
					return nil, err
				}
				return faultio.WrapConn(conn, faultio.ConnConfig{
					Seed:            attempt,
					MaxWriteChunk:   256,
					ResetAfterBytes: int64(len(enc)) / 4 * attempt,
				}), nil
			},
			MaxAttempts: 10, Backoff: time.Millisecond,
		})
		if err != nil {
			t.Fatalf("upload through resets failed: %v", err)
		}
		if res.Reconnects == 0 {
			t.Fatal("reset schedule never tore a connection")
		}
		got, _ := s.Result("torn")
		if got == nil || !bytes.Equal(got.Profile, want) {
			t.Fatal("profile differs from offline pipeline")
		}
	})
}

// TestLeakAuditBusyShedExhaustion: the server sheds every attempt until
// the busy budget runs out. Shed attempts never get past the handshake —
// their sockets and the never-started senders must not accumulate.
func TestLeakAuditBusyShedExhaustion(t *testing.T) {
	enc := testTrace(t, 62, 500)
	gate := make(chan struct{})
	defer close(gate)
	var once sync.Once
	s := startNode(t, server.Options{
		MaxSessions: 1,
		OnSessionBatch: func(id string, batch int, delivered uint64) {
			once.Do(func() { <-gate })
		},
	})

	holderDone := make(chan error, 1)
	go func() {
		_, err := client.Run(context.Background(), client.Options{
			Addr: s.Addr(), SessionID: "holder", Open: opener(enc),
		})
		holderDone <- err
	}()
	for i := 0; s.ActiveSessions() == 0; i++ {
		if i > 1000 {
			t.Fatal("holder never became active")
		}
		time.Sleep(time.Millisecond)
	}

	audit(t, func(t *testing.T) {
		_, err := client.Run(context.Background(), client.Options{
			Addr: s.Addr(), SessionID: "shed", Open: opener(enc),
			MaxAttempts: 2, MaxBusyAttempts: 3, Backoff: time.Millisecond,
		})
		if err == nil || !errors.Is(err, client.ErrBusy) {
			t.Fatalf("err = %v, want wrapped ErrBusy after budget exhaustion", err)
		}
	})

	gate <- struct{}{}
	if err := <-holderDone; err != nil {
		t.Fatalf("holder failed: %v", err)
	}
}

// TestLeakAuditClusterDrainHandover: the serving node drains mid-session;
// the cluster dialer carries the same Run call to the other node, which
// resumes from the shared checkpoint directory. One client call, two
// servers, zero residue.
func TestLeakAuditClusterDrainHandover(t *testing.T) {
	enc := testTrace(t, 63, 900)
	want := offlineProfile(t, enc)
	dir := t.TempDir()

	// Whichever node serves the session drains itself at batch 3 — the
	// ring, not the test, decides which one that is.
	var drainOnce sync.Once
	var drainStarted atomic.Bool
	drained := make(chan struct{})
	nodes := make([]*server.Server, 2)
	addrs := make([]string, 2)
	for i := range nodes {
		self := new(atomic.Pointer[server.Server])
		s := startNode(t, server.Options{
			CheckpointDir: dir,
			OnSessionBatch: func(id string, batch int, delivered uint64) {
				if batch == 3 {
					drainOnce.Do(func() {
						drainStarted.Store(true)
						go func() {
							ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
							defer cancel()
							if err := self.Load().Shutdown(ctx); err != nil {
								t.Errorf("drain did not finish: %v", err)
							}
							close(drained)
						}()
					})
				}
			},
		})
		self.Store(s)
		nodes[i], addrs[i] = s, s.Addr()
	}

	audit(t, func(t *testing.T) {
		cd, err := client.NewClusterDialer(client.ClusterOptions{
			Nodes:     addrs,
			SessionID: "drainee",
			DialNode: func(ctx context.Context, addr string) (net.Conn, error) {
				// Once the drain kicked the session off, wait it out so the
				// redial deterministically meets a fully-drained node (and
				// its flushed checkpoint) instead of racing the shutdown.
				if drainStarted.Load() {
					<-drained
				}
				var d net.Dialer
				return d.DialContext(ctx, "tcp", addr)
			},
			Logf: t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := client.Run(context.Background(), client.Options{
			SessionID: "drainee", Open: opener(enc), Dialer: cd,
			MaxAttempts: 8, Backoff: 2 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("upload across drain failed: %v (result %+v)", err, res)
		}
		if res.Reconnects == 0 {
			t.Fatalf("drain never forced a reconnect: %+v", res)
		}
		var got *server.SessionResult
		for _, n := range nodes {
			if r, ok := n.Result("drainee"); ok {
				got = r
			}
		}
		if got == nil || !bytes.Equal(got.Profile, want) {
			t.Fatal("profile after drain handover differs from offline pipeline")
		}
	})
	<-drained
}
