package server

// Adaptive admission control. The PR 5 daemon bounded concurrency with a
// fixed session semaphore: a constant picked at startup, blind to how
// expensive the sessions actually are. This controller replaces the
// constant with a feedback loop over the signals the observability layer
// already publishes: the in-flight session gauge, the windowed
// batch-decode-latency high-water mark (profio's decode_us_hwm — decode
// latency climbs when sessions contend for cores), and a heap estimate.
// The effective limit moves AIMD-style — halve toward the floor on an
// overloaded window, creep back up one slot per healthy window — so the
// daemon degrades to exactly the explicit busy-shed it always had, which a
// cluster-aware client converts into failover to the ring successor
// instead of failure.

import (
	"runtime"
	"sync"
	"time"

	"aprof/internal/obs"
	"aprof/internal/profio"
)

// DefaultAdmissionInterval is the default signal-evaluation cadence.
const DefaultAdmissionInterval = 100 * time.Millisecond

// AdmissionOptions configures adaptive admission control. The zero value
// disables adaptation: with no threshold set the controller is exactly the
// fixed MaxSessions semaphore. Adaptation needs Options.Obs — without a
// registry the decode-latency signal has nowhere to come from.
type AdmissionOptions struct {
	// MinSessions is the floor the controller never sheds below (default
	// 1): total lockout would turn an overload blip into an outage.
	MinSessions int
	// MaxDecodeLatency, when > 0, treats an evaluation window whose
	// batch-decode-latency high-water mark exceeds it as overload.
	MaxDecodeLatency time.Duration
	// MaxMemoryBytes, when > 0, treats a heap estimate above it as
	// overload.
	MaxMemoryBytes int64
	// Interval is the evaluation cadence (default
	// DefaultAdmissionInterval). Between evaluations admission decisions
	// reuse the cached limit — the per-handshake cost stays one mutex and
	// two comparisons.
	Interval time.Duration
}

// enabled reports whether any adaptive signal is configured.
func (o AdmissionOptions) enabled() bool {
	return o.MaxDecodeLatency > 0 || o.MaxMemoryBytes > 0
}

// admission is the controller instance owned by one Server.
type admission struct {
	max      int
	min      int
	interval time.Duration

	maxDecodeUS int64
	maxMem      int64

	// Signals. decodeHWM is the shared profio gauge, consumed
	// read-and-reset so each evaluation sees only its own window. memBytes
	// republishes the heap estimate for /debug visibility; limitGauge and
	// overloads narrate the controller's own behavior.
	decodeHWM  *obs.Gauge
	memBytes   *obs.Gauge
	limitGauge *obs.Gauge
	overloads  *obs.Counter

	// readMem returns the current heap estimate; swapped by tests.
	readMem func() int64
	// now is the clock; swapped by tests.
	now func() time.Time

	mu       sync.Mutex
	limit    int
	lastEval time.Time
}

// heapEstimate is the default memory signal: allocated heap bytes. It
// stops the world for microseconds, which the evaluation interval
// amortizes to nothing.
func heapEstimate() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// newAdmission builds the controller for a server with the given session
// ceiling. reg may be nil (adaptation degrades to the fixed semaphore).
func newAdmission(maxSessions int, o AdmissionOptions, reg *obs.Registry) *admission {
	a := &admission{
		max:         maxSessions,
		min:         o.MinSessions,
		interval:    o.Interval,
		maxDecodeUS: int64(o.MaxDecodeLatency / time.Microsecond),
		maxMem:      o.MaxMemoryBytes,
		readMem:     heapEstimate,
		now:         time.Now,
		limit:       maxSessions,
	}
	if a.min <= 0 {
		a.min = 1
	}
	if a.min > a.max {
		a.min = a.max
	}
	if a.interval <= 0 {
		a.interval = DefaultAdmissionInterval
	}
	if !o.enabled() {
		// Fixed mode: the limit never moves, so skip evaluation entirely.
		a.maxDecodeUS, a.maxMem = 0, 0
	}
	if reg != nil {
		a.decodeHWM = reg.Scope(profio.ObsScopeProfio).Gauge(profio.DecodeHWMGauge)
		s := reg.Scope(ObsScopeServer)
		a.memBytes = s.Gauge("mem_estimate_bytes")
		a.limitGauge = s.Gauge("admit_limit")
		a.overloads = s.Counter("admit_overloads")
		a.limitGauge.Set(int64(a.limit))
	}
	return a
}

// adaptive reports whether any signal threshold is active.
func (a *admission) adaptive() bool {
	return a.maxDecodeUS > 0 || a.maxMem > 0
}

// admit decides whether a new session may start given the current
// in-flight count. Called with the server's slot mutex held, so decisions
// and the active count are consistent.
func (a *admission) admit(active int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.adaptive() {
		a.maybeEval(active)
	}
	return active < a.limit
}

// maybeEval re-reads the overload signals at most once per interval and
// moves the limit: multiplicative decrease on an overloaded window,
// additive recovery on a healthy one.
func (a *admission) maybeEval(active int) {
	now := a.now()
	if now.Sub(a.lastEval) < a.interval {
		return
	}
	a.lastEval = now

	// Read-and-reset: the gauge accumulated the worst batch-decode latency
	// any session saw since the previous evaluation. Resetting it here is
	// what makes the signal a window instead of a lifetime maximum (a
	// lifetime maximum would shed forever after one bad batch). The racing
	// SetMax a decoder may lose between Load and Set costs one window of
	// signal, never correctness.
	decodeUS := a.decodeHWM.Load()
	a.decodeHWM.Set(0)

	var mem int64
	if a.maxMem > 0 {
		mem = a.readMem()
		a.memBytes.Set(mem)
	}

	overloaded := (a.maxDecodeUS > 0 && decodeUS > a.maxDecodeUS) ||
		(a.maxMem > 0 && mem > a.maxMem)
	if overloaded {
		a.overloads.Inc()
		// Halve from the working set, not the stale limit: when the limit
		// is 8 but only 4 sessions are running, the overload is those 4.
		next := a.limit
		if active < next {
			next = active
		}
		next /= 2
		if next < a.min {
			next = a.min
		}
		a.limit = next
	} else if a.limit < a.max {
		a.limit++
	}
	a.limitGauge.Set(int64(a.limit))
}

// currentLimit reports the effective session limit (for tests and status).
func (a *admission) currentLimit() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limit
}
