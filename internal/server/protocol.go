// Package server implements aprofd: a long-running daemon that ingests
// APT2 trace streams over TCP, running one profio.ProfileStream session per
// connection. Robustness is the feature: sessions are panic-isolated and
// deadline-guarded, a bounded session semaphore sheds load explicitly
// instead of queueing unboundedly, every session is durable through an
// APCK checkpoint, and a graceful drain converts SIGTERM into "stop
// accepting, checkpoint everything in flight" so a restarted daemon loses
// nothing past the last profiled batch.
package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"regexp"
	"time"
)

// The wire protocol. A client opens a TCP connection and speaks:
//
//	handshake:  magic "APRD", version byte, flags byte, uvarint idLen, id
//	response:   status byte, uvarint resumeOffset, uvarint msgLen, msg
//	trace:      the raw APT2 byte stream (client → server until end frame)
//	records:    server → client while the trace streams:
//	            'A' uvarint delivered            — batch acknowledged
//	            'F' uvarint delivered            — session complete
//	            'E' transient byte, uvarint msgLen, msg — session failed
//
// The resumeOffset in a StatusResume response is the event offset of the
// server's checkpoint for this session id: the client resends the trace
// from the beginning and the server skips exactly the acknowledged prefix,
// so a torn connection can never lose or double-count events. Acks carry
// cumulative delivered-event counts at batch (= frame-aligned) boundaries;
// the client uses them for progress detection, the server checkpoint is
// the source of truth.

const (
	protoMagic   = "APRD"
	protoVersion = 1

	flagLenient byte = 1 << 0
	// flagProbe marks a status probe: the server answers the handshake
	// response (StatusOK with the active-session count in the offset field,
	// or StatusBusy while draining) and closes, without claiming a session
	// slot or reading a trace. The cluster health checker dials one of
	// these per node per interval.
	flagProbe byte = 1 << 1
	// flagSuppress declares the trace was recorded with effect-based
	// instrumentation suppression (vm.Options.Suppress): redundant
	// read/write events were elided at the source. The profile is provably
	// identical either way, so the daemon's pipeline needs no switch — the
	// flag is declarative, counted in metrics so operators can see how much
	// of the fleet runs suppressed.
	flagSuppress byte = 1 << 2

	// Response statuses and record kinds are exported for the client
	// package and raw-socket tests.
	StatusOK     byte = 'K' // fresh session accepted
	StatusResume byte = 'R' // session accepted, resuming from ResumeOffset
	StatusBusy   byte = 'B' // shed: session cap reached or id already active
	StatusError  byte = 'E' // handshake rejected (permanent)

	RecAck   byte = 'A'
	RecFinal byte = 'F'
	RecError byte = 'E'

	// maxSessionIDLen bounds the handshake id; maxProtoMsgLen bounds
	// response/record messages, so a corrupt length cannot balloon reads.
	maxSessionIDLen = 64
	maxProtoMsgLen  = 1 << 12
)

// sessionIDPattern is the accepted session-id alphabet: safe as a file
// name component (checkpoints and results are stored under the id).
var sessionIDPattern = regexp.MustCompile(`^[A-Za-z0-9._-]+$`)

// ValidSessionID reports whether id is acceptable on the wire and as a
// checkpoint/result file name.
func ValidSessionID(id string) bool {
	if id == "" || id == "." || id == ".." || len(id) > maxSessionIDLen {
		return false
	}
	return sessionIDPattern.MatchString(id)
}

// handshake is the decoded client hello.
type handshake struct {
	id       string
	lenient  bool
	probe    bool
	suppress bool
}

// readHandshake parses the client hello from br.
func readHandshake(br *bufio.Reader) (handshake, error) {
	var none handshake
	head := make([]byte, len(protoMagic)+2)
	if _, err := io.ReadFull(br, head); err != nil {
		return none, fmt.Errorf("server: reading handshake: %w", err)
	}
	if string(head[:4]) != protoMagic {
		return none, fmt.Errorf("server: bad handshake magic %q", head[:4])
	}
	if head[4] != protoVersion {
		return none, fmt.Errorf("server: unsupported protocol version %d (want %d)", head[4], protoVersion)
	}
	flags := head[5]
	idLen, err := binary.ReadUvarint(br)
	if err != nil {
		return none, fmt.Errorf("server: reading session id length: %w", err)
	}
	if idLen == 0 || idLen > maxSessionIDLen {
		return none, fmt.Errorf("server: session id length %d out of range [1, %d]", idLen, maxSessionIDLen)
	}
	id := make([]byte, idLen)
	if _, err := io.ReadFull(br, id); err != nil {
		return none, fmt.Errorf("server: reading session id: %w", err)
	}
	if !ValidSessionID(string(id)) {
		return none, fmt.Errorf("server: invalid session id %q", id)
	}
	return handshake{
		id:       string(id),
		lenient:  flags&flagLenient != 0,
		probe:    flags&flagProbe != 0,
		suppress: flags&flagSuppress != 0,
	}, nil
}

// ProbeSessionID is the conventional session id carried by status probes.
// It is never admitted as a session: the probe flag short-circuits the
// handshake before slot acquisition.
const ProbeSessionID = "probe"

// AppendProbe encodes a status-probe hello: a handshake that asks only
// "are you accepting sessions?" and claims nothing.
func AppendProbe(dst []byte) []byte {
	dst = append(dst, protoMagic...)
	dst = append(dst, protoVersion, flagProbe)
	dst = binary.AppendUvarint(dst, uint64(len(ProbeSessionID)))
	return append(dst, ProbeSessionID...)
}

// AppendHandshake encodes the client hello (exported for the client
// package and raw-socket tests). suppress declares an effect-suppressed
// trace (see flagSuppress).
func AppendHandshake(dst []byte, id string, lenient, suppress bool) []byte {
	dst = append(dst, protoMagic...)
	dst = append(dst, protoVersion)
	var flags byte
	if lenient {
		flags |= flagLenient
	}
	if suppress {
		flags |= flagSuppress
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(id)))
	return append(dst, id...)
}

// writeResponse sends the handshake response within timeout.
func writeResponse(conn net.Conn, timeout time.Duration, status byte, offset uint64, msg string) error {
	buf := []byte{status}
	buf = binary.AppendUvarint(buf, offset)
	buf = binary.AppendUvarint(buf, uint64(len(msg)))
	buf = append(buf, msg...)
	return deadlineWrite(conn, timeout, buf)
}

// writeAck sends one 'A' or 'F' record within timeout.
func writeAck(conn net.Conn, timeout time.Duration, rec byte, delivered uint64) error {
	buf := []byte{rec}
	buf = binary.AppendUvarint(buf, delivered)
	return deadlineWrite(conn, timeout, buf)
}

// writeError sends an 'E' record within timeout. transient tells the
// client whether retrying (and resuming from the checkpoint) can succeed.
func writeError(conn net.Conn, timeout time.Duration, transient bool, msg string) error {
	if len(msg) > maxProtoMsgLen {
		msg = msg[:maxProtoMsgLen]
	}
	buf := []byte{RecError}
	if transient {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(msg)))
	buf = append(buf, msg...)
	return deadlineWrite(conn, timeout, buf)
}

// deadlineWrite writes buf under a write deadline, so a stalled client
// cannot wedge a session goroutine in a send.
func deadlineWrite(conn net.Conn, timeout time.Duration, buf []byte) error {
	if timeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(timeout))
		defer conn.SetWriteDeadline(time.Time{})
	}
	_, err := conn.Write(buf)
	return err
}

// Response is a decoded handshake response (exported for the client).
type Response struct {
	Status       byte
	ResumeOffset uint64
	Msg          string
}

// ReadResponse parses the handshake response from br.
func ReadResponse(br *bufio.Reader) (Response, error) {
	var none Response
	status, err := br.ReadByte()
	if err != nil {
		return none, fmt.Errorf("server: reading response status: %w", err)
	}
	switch status {
	case StatusOK, StatusResume, StatusBusy, StatusError:
	default:
		return none, fmt.Errorf("server: unknown response status %q", status)
	}
	offset, err := binary.ReadUvarint(br)
	if err != nil {
		return none, fmt.Errorf("server: reading resume offset: %w", err)
	}
	msg, err := readProtoMsg(br)
	if err != nil {
		return none, err
	}
	return Response{Status: status, ResumeOffset: offset, Msg: msg}, nil
}

// Record is one decoded server→client stream record (exported for the
// client).
type Record struct {
	Kind      byte
	Delivered uint64
	Transient bool
	Msg       string
}

// ReadRecord parses the next stream record from br.
func ReadRecord(br *bufio.Reader) (Record, error) {
	var none Record
	kind, err := br.ReadByte()
	if err != nil {
		return none, err
	}
	switch kind {
	case RecAck, RecFinal:
		delivered, err := binary.ReadUvarint(br)
		if err != nil {
			return none, fmt.Errorf("server: reading %q record: %w", kind, err)
		}
		return Record{Kind: kind, Delivered: delivered}, nil
	case RecError:
		transient, err := br.ReadByte()
		if err != nil {
			return none, fmt.Errorf("server: reading error record: %w", err)
		}
		msg, err := readProtoMsg(br)
		if err != nil {
			return none, err
		}
		return Record{Kind: kind, Transient: transient != 0, Msg: msg}, nil
	default:
		return none, fmt.Errorf("server: unknown record kind %q", kind)
	}
}

// readProtoMsg reads a uvarint-length-prefixed, bounded message string.
func readProtoMsg(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", fmt.Errorf("server: reading message length: %w", err)
	}
	if n > maxProtoMsgLen {
		return "", fmt.Errorf("server: message length %d exceeds limit %d", n, maxProtoMsgLen)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(br, msg); err != nil {
		return "", fmt.Errorf("server: reading message: %w", err)
	}
	return string(msg), nil
}
