package server_test

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"aprof/internal/core"
	"aprof/internal/obs"
	"aprof/internal/profio"
	"aprof/internal/server"
	"aprof/internal/server/client"
	"aprof/internal/trace"
)

// testTrace encodes a random trace to APT2 bytes.
func testTrace(t *testing.T, seed int64, ops int) []byte {
	t.Helper()
	tr := trace.Random(trace.RandomConfig{Seed: seed, Ops: ops, Threads: 3})
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// offlineProfile runs the plain offline pipeline over enc — the reference
// the daemon must match byte for byte.
func offlineProfile(t *testing.T, enc []byte) []byte {
	t.Helper()
	ps, err := profio.ProfileStream(context.Background(), bytes.NewReader(enc), core.DefaultConfig(), profio.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := profio.Write(&buf, ps); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// startServer fills test defaults, starts a daemon on a loopback port, and
// tears it down with the test.
func startServer(t *testing.T, opts server.Options) *server.Server {
	t.Helper()
	if opts.Config.CounterLimit == 0 {
		opts.Config = core.DefaultConfig()
	}
	if opts.BatchSize == 0 {
		opts.BatchSize = 16
	}
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = 64
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	s := server.New(opts)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Abort()
		s.Wait()
	})
	return s
}

// opener adapts trace bytes to the client's restartable source.
func opener(enc []byte) func() (io.ReadCloser, error) {
	return func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(enc)), nil
	}
}

// waitNoLeak polls until the goroutine count returns to its baseline —
// the PR 4 leak-audit pattern.
func waitNoLeak(t *testing.T, before int) {
	t.Helper()
	for i := 0; ; i++ {
		if after := runtime.NumGoroutine(); after <= before {
			return
		} else if i >= 250 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDaemonCleanSessionMatchesOffline: the baseline guarantee — a session
// streamed through the daemon produces the byte-identical profile of the
// offline pipeline, and the final record carries the delivered count.
func TestDaemonCleanSessionMatchesOffline(t *testing.T) {
	enc := testTrace(t, 1, 1500)
	want := offlineProfile(t, enc)
	s := startServer(t, server.Options{})

	res, err := client.Run(context.Background(), client.Options{
		Addr: s.Addr(), SessionID: "clean", Open: opener(enc),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 || res.Acks == 0 {
		t.Fatalf("no progress recorded: %+v", res)
	}
	got, ok := s.Result("clean")
	if !ok {
		t.Fatal("no result stored for completed session")
	}
	if !bytes.Equal(got.Profile, want) {
		t.Fatal("daemon profile differs from offline pipeline")
	}
	if got.Delivered != res.Delivered {
		t.Fatalf("server delivered %d, client saw %d", got.Delivered, res.Delivered)
	}
}

// TestHandshakeRejects: malformed hellos must be answered with a status
// error, not crash or hang the daemon.
func TestHandshakeRejects(t *testing.T) {
	s := startServer(t, server.Options{})
	cases := map[string][]byte{
		"bad magic":   []byte("NOPE\x01\x00\x03abc"),
		"bad version": []byte("APRD\x63\x00\x03abc"),
		"empty id":    []byte("APRD\x01\x00\x00"),
		"bad id":      append(server.AppendHandshake(nil, "ok", false, false)[:6], append([]byte{4}, "a/.."...)...),
	}
	for name, hello := range cases {
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(hello)
		resp, err := server.ReadResponse(bufio.NewReader(conn))
		if err != nil {
			t.Fatalf("%s: reading response: %v", name, err)
		}
		if resp.Status != server.StatusError {
			t.Errorf("%s: status %q, want error", name, resp.Status)
		}
		conn.Close()
	}
}

// TestValidSessionID pins the id alphabet: anything that could escape the
// checkpoint directory is rejected.
func TestValidSessionID(t *testing.T) {
	for _, ok := range []string{"a", "build-42", "x.y_z", strings.Repeat("a", 64)} {
		if !server.ValidSessionID(ok) {
			t.Errorf("server.ValidSessionID(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "a/b", "..", "a b", "a\x00b", strings.Repeat("a", 65)} {
		if server.ValidSessionID(bad) {
			t.Errorf("server.ValidSessionID(%q) = true", bad)
		}
	}
}

// TestBusySheds: at the session cap (and for a duplicate id) the daemon
// must answer busy immediately — explicit shedding, not queueing.
func TestBusySheds(t *testing.T) {
	enc := testTrace(t, 2, 1200)
	reg := obs.NewRegistry()
	gate := make(chan struct{})
	var once bool
	s := startServer(t, server.Options{
		MaxSessions: 1,
		Obs:         reg,
		OnSessionBatch: func(id string, batch int, delivered uint64) {
			if !once {
				once = true
				<-gate // hold the only slot while the probes run
			}
		},
	})
	defer close(gate)

	first := make(chan error, 1)
	go func() {
		_, err := client.Run(context.Background(), client.Options{
			Addr: s.Addr(), SessionID: "holder", Open: opener(enc),
		})
		first <- err
	}()

	// Wait until the holder occupies the slot.
	for i := 0; ; i++ {
		if reg.Scope(server.ObsScopeServer).Gauge("active_sessions").Load() == 1 {
			break
		}
		if i > 500 {
			t.Fatal("holder session never became active")
		}
		time.Sleep(2 * time.Millisecond)
	}

	for _, id := range []string{"probe", "holder"} {
		_, err := client.Run(context.Background(), client.Options{
			Addr: s.Addr(), SessionID: id, Open: opener(enc),
			MaxAttempts: 1, MaxBusyAttempts: 1, Backoff: time.Millisecond,
		})
		if err == nil || !strings.Contains(err.Error(), "busy") {
			t.Fatalf("session %q during overload: err = %v, want busy", id, err)
		}
	}
	if shed := reg.Scope(server.ObsScopeServer).Counter("sessions_shed").Load(); shed != 2 {
		t.Errorf("sessions_shed = %d, want 2", shed)
	}

	gate <- struct{}{} // release the holder
	if err := <-first; err != nil {
		t.Fatalf("holder session failed: %v", err)
	}
}

// TestEventLimitIsPermanent: exceeding MaxSessionEvents must be reported
// as permanent — retrying an oversized trace cannot succeed.
func TestEventLimitIsPermanent(t *testing.T) {
	enc := testTrace(t, 3, 1200)
	s := startServer(t, server.Options{MaxSessionEvents: 100, BatchSize: 32})
	_, err := client.Run(context.Background(), client.Options{
		Addr: s.Addr(), SessionID: "big", Open: opener(enc),
	})
	if !errors.Is(err, client.ErrPermanent) {
		t.Fatalf("err = %v, want ErrPermanent", err)
	}
	if !strings.Contains(err.Error(), "event limit") {
		t.Fatalf("err = %v, want event limit mention", err)
	}
}

// TestConnByteLimitResumesAcrossReconnects: the byte budget is per
// connection, so a tripped session is transient — its checkpoint survives
// and an unlimited server finishes it to the byte-identical profile.
func TestConnByteLimitResumesAcrossReconnects(t *testing.T) {
	enc := testTrace(t, 4, 1500)
	want := offlineProfile(t, enc)
	dir := t.TempDir()

	limited := startServer(t, server.Options{
		MaxConnBytes:    int64(len(enc)) * 3 / 4,
		CheckpointDir:   dir,
		CheckpointEvery: 16,
	})
	_, err := client.Run(context.Background(), client.Options{
		Addr: limited.Addr(), SessionID: "metered", Open: opener(enc),
		MaxAttempts: 2, Backoff: time.Millisecond,
	})
	if err == nil {
		t.Fatal("session under byte limit unexpectedly completed")
	}
	if errors.Is(err, client.ErrPermanent) {
		t.Fatalf("byte limit reported permanent: %v", err)
	}
	if _, serr := os.Stat(filepath.Join(dir, "metered.apck")); serr != nil {
		t.Fatalf("no checkpoint survived the byte-limited attempts: %v", serr)
	}
	limited.Abort()
	limited.Wait()

	free := startServer(t, server.Options{CheckpointDir: dir, CheckpointEvery: 16})
	res, err := client.Run(context.Background(), client.Options{
		Addr: free.Addr(), SessionID: "metered", Open: opener(enc),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedFrom == 0 {
		t.Fatal("second server did not resume from the checkpoint")
	}
	got, _ := free.Result("metered")
	if got == nil || !bytes.Equal(got.Profile, want) {
		t.Fatal("resumed profile differs from offline pipeline")
	}
}

// TestCorruptCheckpointDiscarded: a corrupt checkpoint must cost only the
// resume — the daemon discards it and serves the session fresh.
func TestCorruptCheckpointDiscarded(t *testing.T) {
	enc := testTrace(t, 5, 900)
	want := offlineProfile(t, enc)
	dir := t.TempDir()
	path := filepath.Join(dir, "scarred.apck")
	if err := os.WriteFile(path, []byte("APCKgarbage-not-a-checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := startServer(t, server.Options{CheckpointDir: dir, Obs: reg})

	res, err := client.Run(context.Background(), client.Options{
		Addr: s.Addr(), SessionID: "scarred", Open: opener(enc),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedFrom != 0 {
		t.Fatalf("resumed from %d via a corrupt checkpoint", res.ResumedFrom)
	}
	if n := reg.Scope(server.ObsScopeServer).Counter("checkpoints_discarded").Load(); n != 1 {
		t.Errorf("checkpoints_discarded = %d, want 1", n)
	}
	got, _ := s.Result("scarred")
	if got == nil || !bytes.Equal(got.Profile, want) {
		t.Fatal("fresh session after discard differs from offline pipeline")
	}
}

// TestSessionPanicIsolated: a panic inside one session (here, from the
// operational hook) must surface as that session's error while the daemon
// keeps serving other sessions.
func TestSessionPanicIsolated(t *testing.T) {
	enc := testTrace(t, 6, 900)
	reg := obs.NewRegistry()
	s := startServer(t, server.Options{
		Obs: reg,
		OnSessionBatch: func(id string, batch int, delivered uint64) {
			if id == "boom" && batch == 2 {
				panic("injected session panic")
			}
		},
	})

	_, err := client.Run(context.Background(), client.Options{
		Addr: s.Addr(), SessionID: "boom", Open: opener(enc),
		MaxAttempts: 1, Backoff: time.Millisecond,
	})
	if err == nil {
		t.Fatal("panicking session reported success")
	}
	if n := reg.Scope(server.ObsScopeServer).Counter("panics_recovered").Load(); n != 1 {
		t.Fatalf("panics_recovered = %d, want 1", n)
	}

	// The daemon survived: a normal session still completes.
	if _, err := client.Run(context.Background(), client.Options{
		Addr: s.Addr(), SessionID: "after", Open: opener(enc),
	}); err != nil {
		t.Fatalf("session after panic: %v", err)
	}
}

// TestSlowLorisTimesOut: a client that connects and trickles nothing must
// be cut off by the idle deadline, freeing its slot.
func TestSlowLorisTimesOut(t *testing.T) {
	enc := testTrace(t, 7, 600)
	s := startServer(t, server.Options{MaxSessions: 1, IdleTimeout: 50 * time.Millisecond})

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(server.AppendHandshake(nil, "loris", false, false))
	br := bufio.NewReader(conn)
	if resp, err := server.ReadResponse(br); err != nil || resp.Status != server.StatusOK {
		t.Fatalf("handshake: %+v, %v", resp, err)
	}
	// ... and then send nothing. The server must fail the session and free
	// the only slot well before a real client would give up.
	deadline := time.Now().Add(5 * time.Second)
	conn.SetReadDeadline(deadline)
	rec, err := server.ReadRecord(br)
	if err != nil || rec.Kind != server.RecError {
		t.Fatalf("stalled session record = %+v, %v; want error record", rec, err)
	}

	if _, err := client.Run(context.Background(), client.Options{
		Addr: s.Addr(), SessionID: "prompt", Open: opener(enc),
		MaxAttempts: 3, Backoff: 10 * time.Millisecond,
	}); err != nil {
		t.Fatalf("session after slow-loris eviction: %v", err)
	}
}

// TestProfilesHandler: the debug mux endpoint serves the index and the
// per-session profile document.
func TestProfilesHandler(t *testing.T) {
	enc := testTrace(t, 8, 700)
	want := offlineProfile(t, enc)
	dir := t.TempDir()
	s := startServer(t, server.Options{ResultDir: dir})
	if _, err := client.Run(context.Background(), client.Options{
		Addr: s.Addr(), SessionID: "web", Open: opener(enc),
	}); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(s.ProfilesHandler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}
	if code, body := get("/profiles/"); code != http.StatusOK || !strings.Contains(string(body), `"web"`) {
		t.Fatalf("index = %d %q", code, body)
	}
	if code, body := get("/profiles/web"); code != http.StatusOK || !bytes.Equal(body, want) {
		t.Fatalf("profile endpoint returned %d, matching=%v", code, bytes.Equal(body, want))
	}
	if code, _ := get("/profiles/nope"); code != http.StatusNotFound {
		t.Fatalf("missing profile = %d, want 404", code)
	}

	// ResultDir got the same document, atomically renamed into place.
	onDisk, err := os.ReadFile(filepath.Join(dir, "web.json"))
	if err != nil || !bytes.Equal(onDisk, want) {
		t.Fatalf("ResultDir document: %v, matching=%v", err, bytes.Equal(onDisk, want))
	}
}

// TestShutdownLeavesNoGoroutines: after serving sessions and draining, the
// daemon must join every goroutine it started.
func TestShutdownLeavesNoGoroutines(t *testing.T) {
	enc := testTrace(t, 9, 800)
	before := runtime.NumGoroutine()
	s := server.New(server.Options{Config: core.DefaultConfig(), BatchSize: 16, Logf: t.Logf})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := client.Run(context.Background(), client.Options{
			Addr: s.Addr(), SessionID: "drain-" + string(rune('a'+i)), Open: opener(enc),
		}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain with no in-flight sessions: %v", err)
	}
	waitNoLeak(t, before)
}
