package server_test

// The network chaos suite: the daemon and its reconnecting client against
// deterministic link failures — mid-frame resets, fragmented writes, hard
// daemon kills, graceful drains with a server handover, and overload. The
// invariant under every scenario is the same: on eventual success the
// profile is byte-identical to the offline pipeline (no event lost or
// double-counted past the last acknowledged batch), and no goroutines
// outlive their server.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aprof/internal/faultio"
	"aprof/internal/obs"
	"aprof/internal/server"
	"aprof/internal/server/client"
)

// chaosDialer dials addr and wraps each connection in a ChaosConn whose
// reset budget grows with the attempt number: early connections die
// mid-frame, later ones live longer, so the sweep is guaranteed to make
// progress while still exercising many distinct tear points.
func chaosDialer(addr func() string, seed int64, step int64) func(context.Context) (net.Conn, error) {
	var attempts atomic.Int64
	return func(ctx context.Context) (net.Conn, error) {
		n := attempts.Add(1)
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr())
		if err != nil {
			return nil, err
		}
		return faultio.WrapConn(conn, faultio.ConnConfig{
			Seed:            seed + n,
			MaxWriteChunk:   512,
			ResetAfterBytes: step * n,
		}), nil
	}
}

// TestChaosReconnectSweep: across seeds, a client whose every connection
// is fragmented and reset mid-stream must still finish the upload through
// checkpointed resumes, byte-identical to the offline pipeline.
func TestChaosReconnectSweep(t *testing.T) {
	enc := testTrace(t, 20, 1200)
	want := offlineProfile(t, enc)
	before := runtime.NumGoroutine()

	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			s := startServer(t, server.Options{
				CheckpointDir:   dir,
				CheckpointEvery: 8,
				BatchSize:       16,
			})
			addr := s.Addr()
			res, err := client.Run(context.Background(), client.Options{
				SessionID:   "chaos",
				Open:        opener(enc),
				Dial:        chaosDialer(func() string { return addr }, seed*100, int64(len(enc))/6),
				MaxAttempts: 10,
				Backoff:     time.Millisecond,
				Jitter:      0.5,
				Seed:        seed,
			})
			if err != nil {
				t.Fatalf("chaos upload failed: %v (result %+v)", err, res)
			}
			if res.Reconnects == 0 {
				t.Fatalf("chaos schedule never tore a connection: %+v", res)
			}
			got, _ := s.Result("chaos")
			if got == nil || !bytes.Equal(got.Profile, want) {
				t.Fatal("profile after chaos resumes differs from offline pipeline")
			}
			s.Abort()
			s.Wait()
		})
	}
	waitNoLeak(t, before)
}

// TestKillResumeSweep: hard-kill the daemon (the in-process SIGKILL) at a
// sweep of batch positions mid-session; a restarted daemon over the same
// checkpoint directory must finish the session byte-identically.
func TestKillResumeSweep(t *testing.T) {
	enc := testTrace(t, 21, 1200)
	want := offlineProfile(t, enc)
	before := runtime.NumGoroutine()

	for _, killAt := range []int{1, 2, 5, 9} {
		killAt := killAt
		t.Run(fmt.Sprintf("killAt=%d", killAt), func(t *testing.T) {
			dir := t.TempDir()
			var victim atomic.Pointer[server.Server]
			s1 := startServer(t, server.Options{
				CheckpointDir:   dir,
				CheckpointEvery: 8,
				BatchSize:       16,
				OnSessionBatch: func(id string, batch int, delivered uint64) {
					if batch == killAt {
						victim.Load().Abort()
					}
				},
			})
			victim.Store(s1)

			_, err := client.Run(context.Background(), client.Options{
				Addr: s1.Addr(), SessionID: "victim", Open: opener(enc),
				MaxAttempts: 1, Backoff: time.Millisecond,
			})
			if err == nil {
				t.Fatal("session survived a daemon kill")
			}
			s1.Wait()

			s2 := startServer(t, server.Options{CheckpointDir: dir, CheckpointEvery: 8, BatchSize: 16})
			res, err := client.Run(context.Background(), client.Options{
				Addr: s2.Addr(), SessionID: "victim", Open: opener(enc),
			})
			if err != nil {
				t.Fatalf("resume after kill: %v", err)
			}
			if res.ResumedFrom == 0 {
				t.Fatal("restarted daemon found no checkpoint to resume")
			}
			got, _ := s2.Result("victim")
			if got == nil || !bytes.Equal(got.Profile, want) {
				t.Fatal("profile after kill+resume differs from offline pipeline")
			}
			s2.Abort()
			s2.Wait()
		})
	}
	waitNoLeak(t, before)
}

// TestGracefulDrainHandsOver: one client.Run call spans a SIGTERM-style
// drain — the first daemon checkpoints the in-flight session and goes
// away, a replacement comes up on a new port, and the client's reconnect
// loop finds it and resumes to a byte-identical profile.
func TestGracefulDrainHandsOver(t *testing.T) {
	enc := testTrace(t, 22, 1500)
	want := offlineProfile(t, enc)
	dir := t.TempDir()

	var addr atomic.Value // string: where the client should dial now
	drainOnce := sync.Once{}
	handover := make(chan *server.Server, 1)

	var s1 *server.Server
	s1 = startServer(t, server.Options{
		CheckpointDir:   dir,
		CheckpointEvery: 8,
		BatchSize:       16,
		OnSessionBatch: func(id string, batch int, delivered uint64) {
			if batch == 3 {
				drainOnce.Do(func() {
					go func() {
						ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
						defer cancel()
						if err := s1.Shutdown(ctx); err != nil {
							t.Errorf("drain did not finish in time: %v", err)
						}
						s2 := startServer(t, server.Options{CheckpointDir: dir, CheckpointEvery: 8, BatchSize: 16})
						addr.Store(s2.Addr())
						handover <- s2
					}()
				})
			}
		},
	})
	addr.Store(s1.Addr())

	res, err := client.Run(context.Background(), client.Options{
		SessionID: "handover",
		Open:      opener(enc),
		Dial: func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr.Load().(string))
		},
		MaxAttempts: 10,
		Backoff:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("upload across drain failed: %v (result %+v)", err, res)
	}
	if res.Reconnects == 0 || res.ResumedFrom == 0 {
		t.Fatalf("drain did not force a checkpointed reconnect: %+v", res)
	}
	s2 := <-handover
	got, _ := s2.Result("handover")
	if got == nil || !bytes.Equal(got.Profile, want) {
		t.Fatal("profile after drain handover differs from offline pipeline")
	}
}

// TestOverloadShedsWithoutDeadlock: more concurrent clients than session
// slots. Shed clients back off and retry; every upload must eventually
// complete (bounded by the test timeout — a deadlock fails loudly) and
// match the offline pipeline.
func TestOverloadShedsWithoutDeadlock(t *testing.T) {
	enc := testTrace(t, 23, 800)
	want := offlineProfile(t, enc)
	reg := obs.NewRegistry()
	s := startServer(t, server.Options{MaxSessions: 2, Obs: reg})

	const clients = 6
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		i := i
		go func() {
			_, err := client.Run(context.Background(), client.Options{
				Addr:        s.Addr(),
				SessionID:   fmt.Sprintf("load-%d", i),
				Open:        opener(enc),
				MaxAttempts: 100,
				Backoff:     2 * time.Millisecond,
				Jitter:      0.5,
				Seed:        int64(i),
			})
			errs <- err
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("client under overload: %v", err)
		}
	}
	for i := 0; i < clients; i++ {
		got, _ := s.Result(fmt.Sprintf("load-%d", i))
		if got == nil || !bytes.Equal(got.Profile, want) {
			t.Fatalf("client load-%d profile differs from offline pipeline", i)
		}
	}
	if reg.Scope(server.ObsScopeServer).Counter("sessions_completed").Load() != clients {
		t.Error("completed-session count does not match the client count")
	}
}

// TestDrainWithStalledClient: Shutdown must not hang on a session whose
// client is blocked mid-stream sending nothing — the read-deadline nudge
// turns the blocked read into a prompt, checkpointed exit.
func TestDrainWithStalledClient(t *testing.T) {
	enc := testTrace(t, 24, 1200)
	dir := t.TempDir()
	s := startServer(t, server.Options{CheckpointDir: dir, CheckpointEvery: 8, BatchSize: 16})

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(server.AppendHandshake(nil, "stalled", false, false))
	// Send most of the trace, then stall forever mid-frame, giving the
	// session a moment to profile what arrived.
	conn.Write(enc[:len(enc)*2/3])
	time.Sleep(100 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain hung on a stalled client: %v after %v", err, time.Since(start))
	}
}

// TestDrainRefusesNewSessions: once draining, new handshakes are answered
// busy, not accepted into a dying server.
func TestDrainRefusesNewSessions(t *testing.T) {
	enc := testTrace(t, 25, 600)
	s := startServer(t, server.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// The listener is closed, so dials are refused outright; a client that
	// raced a connection in before the close would get busy. Either way the
	// error is transient and the client gives up after its budget.
	_, err := client.Run(context.Background(), client.Options{
		Addr: s.Addr(), SessionID: "late", Open: opener(enc),
		MaxAttempts: 2, Backoff: time.Millisecond,
	})
	if err == nil {
		t.Fatal("session accepted by a drained server")
	}
	if strings.Contains(err.Error(), "panic") {
		t.Fatalf("unexpected: %v", err)
	}
}
