package server_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"aprof/internal/repo"
	"aprof/internal/repo/backend"
	"aprof/internal/server"
	"aprof/internal/server/client"
)

// openStore opens (initializing if needed) a profile repository for tests.
func openStore(t *testing.T, dir string) *repo.Repository {
	t.Helper()
	be, err := backend.OpenLocal(dir)
	if err != nil {
		t.Fatal(err)
	}
	r, err := repo.OpenOrInit(be, repo.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestStoreMatchesFlatFilePath: with both -result-dir and -store configured
// the two persistence paths must agree byte for byte, and both must match
// the offline pipeline.
func TestStoreMatchesFlatFilePath(t *testing.T) {
	enc := testTrace(t, 21, 1500)
	want := offlineProfile(t, enc)
	resultDir := t.TempDir()
	storeDir := t.TempDir()
	store := openStore(t, storeDir)
	defer store.Close()

	s := startServer(t, server.Options{ResultDir: resultDir, Store: store})
	if _, err := client.Run(context.Background(), client.Options{
		Addr: s.Addr(), SessionID: "both-paths", Open: opener(enc),
	}); err != nil {
		t.Fatal(err)
	}

	flat, err := os.ReadFile(filepath.Join(resultDir, "both-paths.json"))
	if err != nil {
		t.Fatal(err)
	}
	stored, err := store.GetSession("both-paths")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(flat, want) {
		t.Fatal("flat-file profile differs from offline pipeline")
	}
	if !bytes.Equal(stored, want) {
		t.Fatal("store profile differs from offline pipeline")
	}
	if rep := store.Check(); !rep.OK() {
		t.Fatalf("store check: %v", rep.Errors)
	}
}

// TestStoreServesAcrossRestart: a fresh Server (empty in-memory results)
// configured with the same repository serves the previous daemon's
// sessions through Result, ResultIDs and the /profiles/ handler.
func TestStoreServesAcrossRestart(t *testing.T) {
	enc := testTrace(t, 22, 1200)
	want := offlineProfile(t, enc)
	storeDir := t.TempDir()

	store := openStore(t, storeDir)
	s := startServer(t, server.Options{Store: store})
	if _, err := client.Run(context.Background(), client.Options{
		Addr: s.Addr(), SessionID: "survivor", Open: opener(enc),
	}); err != nil {
		t.Fatal(err)
	}
	s.Abort()
	s.Wait()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// The "restarted daemon": new store handle, new server, no sessions run.
	store2 := openStore(t, storeDir)
	defer store2.Close()
	s2 := startServer(t, server.Options{Store: store2})

	res, ok := s2.Result("survivor")
	if !ok {
		t.Fatal("restarted server does not serve the stored session")
	}
	if !bytes.Equal(res.Profile, want) {
		t.Fatal("stored profile differs from offline pipeline after restart")
	}
	ids := s2.ResultIDs()
	if len(ids) != 1 || ids[0] != "survivor" {
		t.Fatalf("ResultIDs after restart = %v", ids)
	}

	// The HTTP surface (what cluster fan-out reads) serves it too.
	srv := httptest.NewServer(s2.ProfilesHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/profiles/survivor")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("/profiles/survivor: status %d, matches: %v", resp.StatusCode, bytes.Equal(got.Bytes(), want))
	}
}
