package server

// White-box tests of the adaptive admission controller: a scripted clock
// and scripted signals drive the AIMD loop through overload, recovery,
// and the fixed-semaphore degenerate case, deterministically.

import (
	"testing"
	"time"

	"aprof/internal/obs"
	"aprof/internal/profio"
)

// admissionHarness builds a controller with a manual clock and a scripted
// memory signal.
type admissionHarness struct {
	a   *admission
	reg *obs.Registry
	now time.Time
	mem int64
}

func newAdmissionHarness(max int, o AdmissionOptions) *admissionHarness {
	h := &admissionHarness{reg: obs.NewRegistry(), now: time.Unix(1000, 0)}
	h.a = newAdmission(max, o, h.reg)
	h.a.now = func() time.Time { return h.now }
	h.a.readMem = func() int64 { return h.mem }
	return h
}

// tick advances past the evaluation interval so the next admit re-reads
// the signals.
func (h *admissionHarness) tick() { h.now = h.now.Add(h.a.interval + time.Millisecond) }

// decodeSpike simulates a slow decode window by raising the shared gauge
// the way the profio decoder does.
func (h *admissionHarness) decodeSpike(us int64) {
	h.reg.Scope(profio.ObsScopeProfio).Gauge(profio.DecodeHWMGauge).SetMax(us)
}

// TestAdmissionFixedModeIsPlainSemaphore: with no thresholds the limit is
// MaxSessions forever, whatever the signals do.
func TestAdmissionFixedModeIsPlainSemaphore(t *testing.T) {
	h := newAdmissionHarness(4, AdmissionOptions{})
	h.decodeSpike(1 << 40)
	h.mem = 1 << 50
	for i := 0; i < 10; i++ {
		h.tick()
		if !h.a.admit(3) {
			t.Fatal("fixed-mode admission denied below MaxSessions")
		}
		if h.a.admit(4) {
			t.Fatal("fixed-mode admission allowed at MaxSessions")
		}
	}
	if lim := h.a.currentLimit(); lim != 4 {
		t.Fatalf("fixed-mode limit moved to %d", lim)
	}
}

// TestAdmissionDecodeLatencyShedsAndRecovers: a decode-latency spike
// halves the limit toward the floor; healthy windows recover it one slot
// at a time back to the ceiling.
func TestAdmissionDecodeLatencyShedsAndRecovers(t *testing.T) {
	h := newAdmissionHarness(8, AdmissionOptions{
		MaxDecodeLatency: time.Millisecond, // 1000us
		MinSessions:      1,
	})

	// Healthy window: limit stays at the ceiling.
	h.tick()
	if !h.a.admit(7) || h.a.currentLimit() != 8 {
		t.Fatalf("healthy window: limit %d, want 8", h.a.currentLimit())
	}

	// Overloaded window with 8 in flight: halve to 4.
	h.decodeSpike(5000)
	h.tick()
	if h.a.admit(8) {
		t.Fatal("admitted at the ceiling during overload")
	}
	if lim := h.a.currentLimit(); lim != 4 {
		t.Fatalf("after overload: limit %d, want 4", lim)
	}
	// The window was consumed: the same spike must not shed again.
	h.tick()
	h.a.admit(2)
	if lim := h.a.currentLimit(); lim != 5 {
		t.Fatalf("after healthy window: limit %d, want 5 (additive recovery)", lim)
	}

	// Full recovery: one slot per healthy window, capped at the ceiling.
	for i := 0; i < 10; i++ {
		h.tick()
		h.a.admit(2)
	}
	if lim := h.a.currentLimit(); lim != 8 {
		t.Fatalf("after recovery: limit %d, want 8", lim)
	}
	if n := h.reg.Scope(ObsScopeServer).Counter("admit_overloads").Load(); n != 1 {
		t.Fatalf("admit_overloads = %d, want 1", n)
	}
}

// TestAdmissionMemorySignal: the heap-estimate threshold sheds on its own,
// and halving starts from the in-flight count, not the stale limit.
func TestAdmissionMemorySignal(t *testing.T) {
	h := newAdmissionHarness(8, AdmissionOptions{MaxMemoryBytes: 1 << 20})
	h.mem = 2 << 20
	h.tick()
	h.a.admit(4) // 4 in flight under a limit of 8: halve from 4, not 8
	if lim := h.a.currentLimit(); lim != 2 {
		t.Fatalf("after memory overload: limit %d, want 2", lim)
	}
	if g := h.reg.Scope(ObsScopeServer).Gauge("mem_estimate_bytes").Load(); g != 2<<20 {
		t.Fatalf("mem_estimate_bytes = %d, want %d", g, 2<<20)
	}
}

// TestAdmissionFloorHolds: sustained overload parks the limit at
// MinSessions, never zero — shedding everything would turn a blip into an
// outage.
func TestAdmissionFloorHolds(t *testing.T) {
	h := newAdmissionHarness(8, AdmissionOptions{MaxMemoryBytes: 1, MinSessions: 2})
	h.mem = 100
	for i := 0; i < 6; i++ {
		h.tick()
		h.a.admit(8)
	}
	if lim := h.a.currentLimit(); lim != 2 {
		t.Fatalf("limit under sustained overload = %d, want floor 2", lim)
	}
	if !h.a.admit(1) {
		t.Fatal("denied below the floor")
	}
}

// TestAdmissionEvaluatesAtMostOncePerInterval: between ticks the cached
// limit is reused — repeated admits must not burn extra windows.
func TestAdmissionEvaluatesAtMostOncePerInterval(t *testing.T) {
	h := newAdmissionHarness(8, AdmissionOptions{MaxDecodeLatency: time.Millisecond})
	h.tick()
	h.a.admit(0)
	h.decodeSpike(5000)
	// Same window: the spike is not yet visible.
	h.a.admit(0)
	if lim := h.a.currentLimit(); lim != 8 {
		t.Fatalf("limit moved mid-window: %d", lim)
	}
	h.tick()
	h.a.admit(8)
	if lim := h.a.currentLimit(); lim != 4 {
		t.Fatalf("next window missed the spike: limit %d, want 4", lim)
	}
}

// TestAdmissionNilRegistry: without a registry adaptive thresholds cannot
// see signals; the controller must still behave as the fixed semaphore
// instead of shedding spuriously.
func TestAdmissionNilRegistry(t *testing.T) {
	a := newAdmission(4, AdmissionOptions{MaxDecodeLatency: time.Millisecond}, nil)
	for i := 0; i < 5; i++ {
		if !a.admit(3) {
			t.Fatal("denied below the ceiling with nil registry")
		}
		if a.admit(4) {
			t.Fatal("admitted at the ceiling with nil registry")
		}
		time.Sleep(time.Millisecond)
	}
}
