package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a trace for size accounting: the event count, the
// per-kind breakdown, and the binary-encoded size. The instrumentation
// suppression work (vm.Options.Suppress) reports its savings in these
// terms — fewer read/write events and fewer encoded bytes for the same
// profiler output.
type Stats struct {
	// Events is the total event count.
	Events int
	// ByKind counts events per kind.
	ByKind map[Kind]int
	// Bytes is the size of the trace in the binary codec.
	Bytes int
}

// Stats computes the trace summary. Encoding the trace to measure Bytes is
// O(events); callers on hot paths should cache the result.
func (t *Trace) Stats() Stats {
	s := Stats{Events: len(t.Events), ByKind: make(map[Kind]int, 8)}
	for i := range t.Events {
		s.ByKind[t.Events[i].Kind]++
	}
	var cw countingWriter
	if err := WriteBinary(&cw, t); err == nil {
		s.Bytes = int(cw.n)
	}
	return s
}

// String renders "events=N bytes=N kind=N ..." with kinds in a stable
// order, for -stats output and test logs.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "events=%d bytes=%d", s.Events, s.Bytes)
	kinds := make([]Kind, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(&sb, " %s=%d", k, s.ByKind[k])
	}
	return sb.String()
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
