package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The binary format is a compact varint stream:
//
//	magic "APT1"
//	uvarint numRoutines, then each routine name as uvarint length + bytes
//	uvarint numEvents, then per event:
//	    byte kind
//	    varint  thread
//	    uvarint time delta (from previous event)
//	    uvarint cost
//	    kind-dependent payload (routine, or addr+size)
//
// Time is delta-encoded because merged traces have strictly increasing
// times; all other fields are absolute.

const binaryMagic = "APT1"

// WriteBinary encodes tr to w in the binary trace format.
func WriteBinary(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	names := tr.Symbols.Names()
	if err := putUvarint(uint64(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		if err := putUvarint(uint64(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
	}
	if err := putUvarint(uint64(len(tr.Events))); err != nil {
		return err
	}
	var prevTime uint64
	for i := range tr.Events {
		ev := &tr.Events[i]
		if err := bw.WriteByte(byte(ev.Kind)); err != nil {
			return err
		}
		if err := putVarint(int64(ev.Thread)); err != nil {
			return err
		}
		if ev.Time < prevTime {
			return fmt.Errorf("trace: event %d: non-monotonic time", i)
		}
		if err := putUvarint(ev.Time - prevTime); err != nil {
			return err
		}
		prevTime = ev.Time
		if err := putUvarint(ev.Cost); err != nil {
			return err
		}
		switch ev.Kind {
		case KindCall:
			if err := putUvarint(uint64(ev.Routine)); err != nil {
				return err
			}
		case KindRead, KindWrite, KindUserToKernel, KindKernelToUser:
			if err := putUvarint(uint64(ev.Addr)); err != nil {
				return err
			}
			if err := putUvarint(uint64(ev.Size)); err != nil {
				return err
			}
		case KindAcquire, KindRelease:
			if err := putUvarint(uint64(ev.Addr)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// BinaryReader decodes a binary trace incrementally: the header (magic and
// symbol table) is parsed on construction and events are delivered one at a
// time, so arbitrarily large trace files can be profiled without
// materializing them (see the -trace mode of cmd/aprof). The reader accepts
// both the APT1 varint stream and the checksummed, framed APT2 format (see
// codec2.go), sniffing the magic.
type BinaryReader struct {
	br        *bufio.Reader
	syms      *SymbolTable
	remaining uint64 // APT1: events left per the header count
	prevTime  uint64
	index     uint64 // position in the original event sequence
	total     uint64 // declared event count
	version   int    // 1 or 2
	lenient   bool
	done      bool
	stats     CorruptionStats

	// APT2 framing state (see codec2.go).
	off       int64   // bytes consumed from the logical stream
	pending   []byte  // replay buffer used during resynchronization
	frame     []Event // decoded events of the current frame
	framePos  int
	frameSeq  int    // frames observed so far (error reporting)
	expectSeq uint64 // next expected declared frame sequence number

	// Frame accounting for the observability layer: events frames decoded
	// successfully, and resynchronization scans that had to discard bytes.
	// Unlike stats, these are reader-local diagnostics (not part of the
	// corruption accounting a checkpoint preserves).
	framesDecoded uint64
	resyncs       uint64
}

// FrameStats reports how many APT2 events frames were decoded and how many
// resynchronization scans discarded bytes, for the observability layer.
// Both stay zero on APT1 streams, which have no frames.
func (r *BinaryReader) FrameStats() (decoded, resyncs uint64) {
	return r.framesDecoded, r.resyncs
}

// ReaderOptions tunes binary trace decoding.
type ReaderOptions struct {
	// Lenient enables skip-and-resync recovery: a corrupt APT2 frame is
	// recorded in Stats and decoding resumes at the next frame marker
	// instead of failing. For APT1 streams — which have no frame boundaries
	// to resync at — a mid-stream decode error ends the trace early and is
	// recorded as a truncation. Without Lenient any integrity failure is
	// returned as a *CorruptionError.
	Lenient bool
}

// NewBinaryReader parses the header of a binary trace (APT1 or APT2).
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	return NewBinaryReaderOpts(r, ReaderOptions{})
}

// NewBinaryReaderOpts is NewBinaryReader with decoding options. Corruption
// of the stream header (magic or symbol table) is unrecoverable even in
// lenient mode: without the symbol table no event is interpretable.
func NewBinaryReaderOpts(r io.Reader, opts ReaderOptions) (*BinaryReader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	rd := &BinaryReader{br: br, lenient: opts.Lenient, off: int64(len(magic))}
	switch string(magic) {
	case binaryMagic:
		rd.version = 1
		if err := rd.readHeaderV1(); err != nil {
			return nil, err
		}
	case binaryMagicV2:
		rd.version = 2
		if err := rd.readHeaderV2(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	return rd, nil
}

func (r *BinaryReader) readHeaderV1() error {
	syms, err := readSymbolTable(r.br)
	if err != nil {
		return err
	}
	numEvents, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fmt.Errorf("trace: event count: %w", err)
	}
	r.syms = syms
	r.remaining = numEvents
	r.total = numEvents
	return nil
}

// readSymbolTable decodes the symbol-table section shared by both formats:
// uvarint count, then each name as uvarint length + bytes.
func readSymbolTable(br interface {
	io.ByteReader
	io.Reader
}) (*SymbolTable, error) {
	syms := NewSymbolTable()
	numRoutines, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: routine count: %w", err)
	}
	if numRoutines > 1<<24 {
		return nil, fmt.Errorf("trace: implausible routine count %d", numRoutines)
	}
	nameBuf := make([]byte, 0, 64)
	for i := uint64(0); i < numRoutines; i++ {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: routine %d name length: %w", i, err)
		}
		if n > 1<<16 {
			return nil, fmt.Errorf("trace: implausible name length %d", n)
		}
		if uint64(cap(nameBuf)) < n {
			nameBuf = make([]byte, n)
		}
		nameBuf = nameBuf[:n]
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, fmt.Errorf("trace: routine %d name: %w", i, err)
		}
		syms.Intern(string(nameBuf))
	}
	return syms, nil
}

// Symbols returns the trace's symbol table.
func (r *BinaryReader) Symbols() *SymbolTable { return r.syms }

// Len returns the total number of events declared by the header.
func (r *BinaryReader) Len() int { return int(r.total) }

// Stats returns a snapshot of the corruption encountered so far. It is only
// populated in lenient mode (strict readers fail on first corruption).
func (r *BinaryReader) Stats() CorruptionStats { return r.stats }

// ResetStats clears the accumulated corruption statistics. Checkpoint-based
// resumption uses it after skipping the already-profiled prefix so damage in
// that prefix — already accounted for by the checkpoint — is not counted
// twice.
func (r *BinaryReader) ResetStats() { r.stats = CorruptionStats{} }

// eofUnexpected converts a bare io.EOF into io.ErrUnexpectedEOF: the caller
// only invokes it mid-event or mid-frame, where the stream ending is a
// truncation, not a clean end.
func eofUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// decodeEventBody decodes one event — kind byte through kind-dependent
// payload — from br into ev. i is the event's index in the original
// sequence, included in every error; truncation errors wrap
// io.ErrUnexpectedEOF so callers can errors.Is them.
func decodeEventBody(br io.ByteReader, syms *SymbolTable, prevTime *uint64, i uint64, ev *Event) error {
	kindByte, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("trace: event %d kind: %w", i, eofUnexpected(err))
	}
	*ev = Event{Kind: Kind(kindByte)}
	if !ev.Kind.Valid() {
		return fmt.Errorf("trace: event %d: invalid kind %d", i, kindByte)
	}
	thread, err := binary.ReadVarint(br)
	if err != nil {
		return fmt.Errorf("trace: event %d thread: %w", i, eofUnexpected(err))
	}
	ev.Thread = ThreadID(thread)
	dt, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("trace: event %d time: %w", i, eofUnexpected(err))
	}
	*prevTime += dt
	ev.Time = *prevTime
	if ev.Cost, err = binary.ReadUvarint(br); err != nil {
		return fmt.Errorf("trace: event %d cost: %w", i, eofUnexpected(err))
	}
	switch ev.Kind {
	case KindCall:
		rtn, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("trace: event %d routine: %w", i, eofUnexpected(err))
		}
		if int(rtn) >= syms.Len() {
			return fmt.Errorf("trace: event %d: routine id %d out of range", i, rtn)
		}
		ev.Routine = RoutineID(rtn)
	case KindRead, KindWrite, KindUserToKernel, KindKernelToUser:
		addr, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("trace: event %d addr: %w", i, eofUnexpected(err))
		}
		ev.Addr = Addr(addr)
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("trace: event %d size: %w", i, eofUnexpected(err))
		}
		if size > 1<<32-1 {
			return fmt.Errorf("trace: event %d: size %d overflows", i, size)
		}
		ev.Size = uint32(size)
	case KindAcquire, KindRelease:
		addr, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("trace: event %d addr: %w", i, eofUnexpected(err))
		}
		ev.Addr = Addr(addr)
	}
	return nil
}

// Next decodes the next event into ev, returning false at the end of the
// trace. Mid-event truncation surfaces as an error wrapping
// io.ErrUnexpectedEOF and naming the event index.
func (r *BinaryReader) Next(ev *Event) (bool, error) {
	if r.version == 2 {
		return r.nextV2(ev)
	}
	if r.remaining == 0 {
		return false, nil
	}
	if err := decodeEventBody(r.br, r.syms, &r.prevTime, r.index, ev); err != nil {
		if r.lenient {
			// APT1 has no frame boundaries to resync at: treat the
			// remainder as lost and end the stream.
			r.stats.record(&CorruptionError{Offset: -1, Frame: 0, Reason: err.Error()})
			r.stats.Truncated = true
			r.stats.EventsDropped += int(r.remaining)
			r.remaining = 0
			return false, nil
		}
		return false, err
	}
	r.index++
	r.remaining--
	return true, nil
}

// Skip discards the next n events, failing if the stream ends first. In
// lenient mode corrupt regions are skipped and counted exactly as Next would.
func (r *BinaryReader) Skip(n uint64) error {
	var ev Event
	for i := uint64(0); i < n; i++ {
		ok, err := r.Next(&ev)
		if err != nil {
			return fmt.Errorf("trace: skipping %d events: %w", n, err)
		}
		if !ok {
			return fmt.Errorf("trace: skipping %d events: stream ended after %d", n, i)
		}
	}
	return nil
}

// ReadBinary decodes a whole trace previously written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br, err := NewBinaryReader(r)
	if err != nil {
		return nil, err
	}
	tr := &Trace{Symbols: br.Symbols()}
	const maxPrealloc = 1 << 22
	tr.Events = make([]Event, 0, min(uint64(br.Len()), maxPrealloc))
	var ev Event
	for {
		ok, err := br.Next(&ev)
		if err != nil {
			return nil, err
		}
		if !ok {
			return tr, nil
		}
		tr.Events = append(tr.Events, ev)
	}
}

// WriteText encodes tr in a line-oriented human-readable format: a header
// line per routine ("routine <id> <name>") followed by one line per event in
// the form produced by Event.String.
func WriteText(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	for id, name := range tr.Symbols.Names() {
		if _, err := fmt.Fprintf(bw, "routine %d %s\n", id, name); err != nil {
			return err
		}
	}
	for i := range tr.Events {
		if _, err := fmt.Fprintln(bw, tr.Events[i].String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the format emitted by WriteText.
func ReadText(r io.Reader) (*Trace, error) {
	tr := NewTrace()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "routine ") {
			fields := strings.SplitN(line, " ", 3)
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: line %d: malformed routine declaration", lineNo)
			}
			want, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: routine id: %w", lineNo, err)
			}
			got := tr.Symbols.Intern(fields[2])
			if int(got) != want {
				return nil, fmt.Errorf("trace: line %d: routine id %d declared out of order (expected %d)", lineNo, want, got)
			}
			continue
		}
		ev, err := parseEventLine(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		if ev.Kind == KindCall && int(ev.Routine) >= tr.Symbols.Len() {
			return nil, fmt.Errorf("trace: line %d: undeclared routine id %d", lineNo, ev.Routine)
		}
		tr.Events = append(tr.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

// parseEventLine parses one Event.String form, e.g.
// "t1@42 c7 read 100+4" or "t0@1 c1 call r0".
func parseEventLine(line string) (Event, error) {
	var ev Event
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return ev, errors.New("too few fields")
	}
	head := fields[0]
	if !strings.HasPrefix(head, "t") {
		return ev, fmt.Errorf("malformed thread/time field %q", head)
	}
	at := strings.IndexByte(head, '@')
	if at < 0 {
		return ev, fmt.Errorf("malformed thread/time field %q", head)
	}
	thread, err := strconv.ParseInt(head[1:at], 10, 32)
	if err != nil {
		return ev, fmt.Errorf("thread: %w", err)
	}
	ev.Thread = ThreadID(thread)
	if ev.Time, err = strconv.ParseUint(head[at+1:], 10, 64); err != nil {
		return ev, fmt.Errorf("time: %w", err)
	}
	if !strings.HasPrefix(fields[1], "c") {
		return ev, fmt.Errorf("malformed cost field %q", fields[1])
	}
	if ev.Cost, err = strconv.ParseUint(fields[1][1:], 10, 64); err != nil {
		return ev, fmt.Errorf("cost: %w", err)
	}
	kindWord := fields[2]
	rest := fields[3:]
	switch kindWord {
	case "call":
		ev.Kind = KindCall
		if len(rest) != 1 || !strings.HasPrefix(rest[0], "r") {
			return ev, errors.New("call needs a routine operand rN")
		}
		rtn, err := strconv.ParseUint(rest[0][1:], 10, 32)
		if err != nil {
			return ev, fmt.Errorf("routine: %w", err)
		}
		ev.Routine = RoutineID(rtn)
	case "return":
		ev.Kind = KindReturn
	case "switchThread":
		ev.Kind = KindSwitchThread
	case "acquire", "release":
		if kindWord == "acquire" {
			ev.Kind = KindAcquire
		} else {
			ev.Kind = KindRelease
		}
		if len(rest) != 1 {
			return ev, fmt.Errorf("%s needs an object operand", kindWord)
		}
		obj, err := strconv.ParseUint(rest[0], 10, 64)
		if err != nil {
			return ev, fmt.Errorf("object: %w", err)
		}
		ev.Addr = Addr(obj)
	case "read", "write", "userToKernel", "kernelToUser":
		switch kindWord {
		case "read":
			ev.Kind = KindRead
		case "write":
			ev.Kind = KindWrite
		case "userToKernel":
			ev.Kind = KindUserToKernel
		default:
			ev.Kind = KindKernelToUser
		}
		if len(rest) != 1 {
			return ev, fmt.Errorf("%s needs an addr+size operand", kindWord)
		}
		plus := strings.IndexByte(rest[0], '+')
		if plus < 0 {
			return ev, fmt.Errorf("%s operand %q lacks +size", kindWord, rest[0])
		}
		addr, err := strconv.ParseUint(rest[0][:plus], 10, 64)
		if err != nil {
			return ev, fmt.Errorf("addr: %w", err)
		}
		size, err := strconv.ParseUint(rest[0][plus+1:], 10, 32)
		if err != nil {
			return ev, fmt.Errorf("size: %w", err)
		}
		ev.Addr = Addr(addr)
		ev.Size = uint32(size)
	default:
		return ev, fmt.Errorf("unknown event kind %q", kindWord)
	}
	return ev, nil
}
