package trace

import "fmt"

// Corruption reporting for the fault-tolerant decode path. A BinaryReader in
// lenient mode (ReaderOptions.Lenient) does not abort on a damaged APT2
// frame: it records a CorruptionError, resynchronizes at the next frame
// marker, and keeps delivering the surviving events. Strict readers return
// the same *CorruptionError as the terminal error, so callers can
// errors.As() it in either mode.

// CorruptionError describes one corrupt region of a binary trace stream.
type CorruptionError struct {
	// Offset is the byte offset (from the start of the stream) at which the
	// corruption was detected.
	Offset int64
	// Frame is the sequence number of the frame being parsed when the
	// corruption was detected, counted over frames observed by the reader
	// (the frame's own declared sequence number may be unreadable).
	Frame int
	// Reason describes the failed integrity check.
	Reason string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("trace: corrupt frame %d at offset %d: %s", e.Frame, e.Offset, e.Reason)
}

// CorruptionStats aggregates what a lenient reader skipped. All counters are
// exact for mid-stream damage: dropped frames are inferred from the gap in
// frame sequence numbers between intact frames, and dropped events from the
// gap in event indices, so even a frame whose marker itself was destroyed is
// accounted for.
type CorruptionStats struct {
	// FramesDropped counts event-carrying frames whose payload was lost.
	FramesDropped int
	// EventsDropped counts events lost inside dropped frames. For a
	// truncated stream the tail loss is included when the header declared a
	// total event count.
	EventsDropped int
	// BytesSkipped counts raw bytes discarded while resynchronizing.
	BytesSkipped int64
	// Truncated reports that the stream ended without a clean end-of-trace
	// frame (APT2) or before the declared event count (APT1).
	Truncated bool
	// Errors holds the first maxCorruptionErrors structured errors, in
	// detection order; later corruptions are counted but not retained.
	Errors []*CorruptionError
}

// maxCorruptionErrors caps CorruptionStats.Errors so a pathologically
// damaged stream cannot make the error log itself unbounded.
const maxCorruptionErrors = 16

// record notes a corruption incident (the error log side; frame/event loss
// accounting is done separately from sequence-number gaps).
func (s *CorruptionStats) record(e *CorruptionError) {
	if len(s.Errors) < maxCorruptionErrors {
		s.Errors = append(s.Errors, e)
	}
}

// Merge folds other into s. Used by checkpoint/resume, where the total
// accounting of a run is the checkpointed prefix plus the post-resume
// reader's own stats.
func (s *CorruptionStats) Merge(other CorruptionStats) {
	s.FramesDropped += other.FramesDropped
	s.EventsDropped += other.EventsDropped
	s.BytesSkipped += other.BytesSkipped
	s.Truncated = s.Truncated || other.Truncated
	for _, e := range other.Errors {
		s.record(e)
	}
}
