package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	b := NewBuilder()
	t1 := b.Thread(1)
	t2 := b.Thread(2)
	t1.Call("main")
	t1.Work(100)
	t1.Write(1000, 16)
	t2.Call("worker")
	t2.Acquire(7)
	t2.Read(1000, 16)
	t2.Release(7)
	t1.SysRead(2000, 64)
	t1.Read(2000, 8)
	t1.SysWrite(2000, 8)
	t2.Ret()
	t1.Ret()
	return b.Trace()
}

func tracesEqual(a, b *Trace) bool {
	if !reflect.DeepEqual(a.Symbols.Names(), b.Symbols.Names()) {
		return false
	}
	return reflect.DeepEqual(a.Events, b.Events)
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !tracesEqual(tr, got) {
		t.Error("binary round trip altered the trace")
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v\ntext:\n%s", err, buf.String())
	}
	if !tracesEqual(tr, got) {
		t.Error("text round trip altered the trace")
	}
}

func TestBinaryRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 30; iter++ {
		b := NewBuilder()
		threads := make([]*ThreadBuilder, 1+rng.Intn(4))
		for i := range threads {
			threads[i] = b.Thread(ThreadID(i))
			threads[i].Call("main")
		}
		for i := 0; i < 200; i++ {
			tb := threads[rng.Intn(len(threads))]
			switch rng.Intn(5) {
			case 0:
				tb.Read(Addr(rng.Uint64()>>8), uint32(1+rng.Intn(64)))
			case 1:
				tb.Write(Addr(rng.Uint64()>>8), uint32(1+rng.Intn(64)))
			case 2:
				tb.SysRead(Addr(rng.Intn(1000)), uint32(1+rng.Intn(16)))
			case 3:
				tb.Work(uint64(rng.Intn(1000)))
			default:
				tb.Acquire(Addr(rng.Intn(8)))
			}
		}
		tr := b.Trace()
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("iter %d: WriteBinary: %v", iter, err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("iter %d: ReadBinary: %v", iter, err)
		}
		if !tracesEqual(tr, got) {
			t.Fatalf("iter %d: binary round trip altered the trace", iter)
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("APT"),
		[]byte("XXXX"),
		[]byte("APT1"),                      // truncated after magic
		append([]byte("APT1"), 0xff, 0xff),  // implausible routine count varint prefix
		append([]byte("APT1"), 1, 2, 'a'),   // truncated routine name
		append([]byte("APT1"), 0, 1, 200),   // event with invalid kind
		append([]byte("APT1"), 0, 1, 0, 10), // call referencing routine 10 of 0
	}
	for i, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d: ReadBinary accepted garbage %v", i, data)
		}
	}
}

func TestReadTextRejectsGarbage(t *testing.T) {
	cases := []string{
		"bogus line",
		"t1@x c1 read 1+1",
		"t1@1 c1 read 1",       // missing +size
		"t1@1 c1 call",         // missing routine
		"t1@1 c1 call r0",      // undeclared routine
		"routine 5 f",          // out-of-order id
		"t1@1 c1 frobnicate 3", // unknown kind
		"t1@1 read 1+1",        // missing cost
	}
	for _, src := range cases {
		if _, err := ReadText(strings.NewReader(src)); err == nil {
			t.Errorf("ReadText accepted %q", src)
		}
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
routine 0 f

t1@1 c1 call r0
t1@2 c2 return
`
	tr, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if tr.Len() != 2 {
		t.Errorf("got %d events, want 2", tr.Len())
	}
}

// TestEventStringParseQuick is a property test: parsing the String form of a
// random valid event reproduces the event.
func TestEventStringParseQuick(t *testing.T) {
	f := func(thread int16, time uint32, cost uint32, kindSel uint8, addr uint32, size uint16, rtn uint16) bool {
		kinds := []Kind{KindCall, KindReturn, KindRead, KindWrite, KindUserToKernel, KindKernelToUser, KindSwitchThread, KindAcquire, KindRelease}
		ev := Event{
			Kind:   kinds[int(kindSel)%len(kinds)],
			Thread: ThreadID(thread),
			Time:   uint64(time),
			Cost:   uint64(cost),
		}
		switch ev.Kind {
		case KindCall:
			ev.Routine = RoutineID(rtn)
		case KindRead, KindWrite, KindUserToKernel, KindKernelToUser:
			ev.Addr = Addr(addr)
			ev.Size = uint32(size) + 1
		case KindAcquire, KindRelease:
			ev.Addr = Addr(addr)
		}
		got, err := parseEventLine(ev.String())
		return err == nil && got == ev
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
