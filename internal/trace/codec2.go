package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// The APT2 format wraps the APT1 event encoding in checksummed, framed
// records so that a flipped bit or a truncated write damages one frame, not
// the whole trace (the same reasoning behind restic's checksummed pack
// files). Layout:
//
//	magic "APT2"
//	frame*
//
//	frame := marker(4) kind(1) payloadLen(uint32 LE) crc32(uint32 LE) payload
//
// The CRC (IEEE) covers kind, payloadLen and payload. Every payload begins
// with a uvarint frame sequence number (0, 1, 2, ...), which lets a lenient
// reader count exactly how many frames a corrupt region destroyed — even
// when the damage hit the frame marker itself — as the gap between the
// sequence numbers of the surrounding intact frames.
//
// Frame kinds:
//
//	header (1): seq, symbol table (as in APT1), uvarint total event count
//	events (2): seq, uvarint firstIndex, uvarint count, uvarint baseTime,
//	            then count events in the APT1 per-event encoding with time
//	            deltas relative to baseTime — frames are self-contained, so
//	            dropping one does not derail the time decoding of the next
//	end    (3): seq — distinguishes a clean end of trace from truncation
//
// Unknown frame kinds with a valid CRC are skipped, giving future writers a
// compatible extension point.

const binaryMagicV2 = "APT2"

// frameMarker starts every frame. The resync scan looks for this sequence;
// it can legitimately appear inside a payload, in which case the scan syncs
// there, fails the CRC, and keeps scanning — convergence, not correctness,
// depends on its rarity.
var frameMarker = [4]byte{0xF5, 0xA9, 0x1E, 0x4B}

const (
	frameHeader byte = 1
	frameEvents byte = 2
	frameEnd    byte = 3
)

const (
	// maxFramePayload bounds a frame's declared payload length; larger
	// values are treated as corruption of the length field.
	maxFramePayload = 1 << 24
	// maxFrameEventCount bounds an events frame's declared event count.
	maxFrameEventCount = 1 << 21
	// DefaultEventsPerFrame is the events-per-frame granularity of
	// WriteBinary2: small enough that one corrupt frame loses little, large
	// enough that the 13-byte frame overhead is noise.
	DefaultEventsPerFrame = 1024
)

// V2Options tunes WriteBinary2Opts.
type V2Options struct {
	// EventsPerFrame is the number of events per frame (default
	// DefaultEventsPerFrame). Smaller frames lose fewer events per corrupt
	// frame at slightly higher overhead.
	EventsPerFrame int
}

// WriteBinary2 encodes tr in the checksummed, framed APT2 format.
// NewBinaryReader and ReadBinary accept both formats transparently.
func WriteBinary2(w io.Writer, tr *Trace) error {
	return WriteBinary2Opts(w, tr, V2Options{})
}

// WriteBinary2Opts is WriteBinary2 with explicit framing options.
func WriteBinary2Opts(w io.Writer, tr *Trace, opts V2Options) error {
	per := opts.EventsPerFrame
	if per <= 0 {
		per = DefaultEventsPerFrame
	}
	if per > maxFrameEventCount {
		per = maxFrameEventCount
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagicV2); err != nil {
		return err
	}
	seq := uint64(0)
	var payload []byte

	// Header frame: seq, symbol table, total event count.
	payload = binary.AppendUvarint(payload, seq)
	names := tr.Symbols.Names()
	payload = binary.AppendUvarint(payload, uint64(len(names)))
	for _, name := range names {
		payload = binary.AppendUvarint(payload, uint64(len(name)))
		payload = append(payload, name...)
	}
	payload = binary.AppendUvarint(payload, uint64(len(tr.Events)))
	if err := writeFrame(bw, frameHeader, payload); err != nil {
		return err
	}
	seq++

	var prevTime uint64
	for start := 0; start < len(tr.Events); start += per {
		end := start + per
		if end > len(tr.Events) {
			end = len(tr.Events)
		}
		payload = payload[:0]
		payload = binary.AppendUvarint(payload, seq)
		payload = binary.AppendUvarint(payload, uint64(start))
		payload = binary.AppendUvarint(payload, uint64(end-start))
		payload = binary.AppendUvarint(payload, prevTime)
		for i := start; i < end; i++ {
			ev := &tr.Events[i]
			if ev.Time < prevTime {
				return fmt.Errorf("trace: event %d: non-monotonic time", i)
			}
			payload = appendEventBody(payload, ev, &prevTime)
		}
		if err := writeFrame(bw, frameEvents, payload); err != nil {
			return err
		}
		seq++
	}

	payload = binary.AppendUvarint(payload[:0], seq)
	if err := writeFrame(bw, frameEnd, payload); err != nil {
		return err
	}
	return bw.Flush()
}

// writeFrame emits marker | kind | len | crc | payload.
func writeFrame(bw *bufio.Writer, kind byte, payload []byte) error {
	if _, err := bw.Write(frameMarker[:]); err != nil {
		return err
	}
	var hdr [9]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	sum := crc32.ChecksumIEEE(hdr[0:5])
	sum = crc32.Update(sum, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(hdr[5:9], sum)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	_, err := bw.Write(payload)
	return err
}

// appendEventBody appends one event in the APT1 per-event encoding.
func appendEventBody(dst []byte, ev *Event, prevTime *uint64) []byte {
	dst = append(dst, byte(ev.Kind))
	dst = binary.AppendVarint(dst, int64(ev.Thread))
	dst = binary.AppendUvarint(dst, ev.Time-*prevTime)
	*prevTime = ev.Time
	dst = binary.AppendUvarint(dst, ev.Cost)
	switch ev.Kind {
	case KindCall:
		dst = binary.AppendUvarint(dst, uint64(ev.Routine))
	case KindRead, KindWrite, KindUserToKernel, KindKernelToUser:
		dst = binary.AppendUvarint(dst, uint64(ev.Addr))
		dst = binary.AppendUvarint(dst, uint64(ev.Size))
	case KindAcquire, KindRelease:
		dst = binary.AppendUvarint(dst, uint64(ev.Addr))
	}
	return dst
}

// --- APT2 reading ---

// readByte consumes one byte from the logical stream: the resync replay
// buffer first, then the underlying reader.
func (r *BinaryReader) readByte() (byte, error) {
	if len(r.pending) > 0 {
		b := r.pending[0]
		r.pending = r.pending[1:]
		r.off++
		return b, nil
	}
	b, err := r.br.ReadByte()
	if err == nil {
		r.off++
	}
	return b, err
}

// readFull fills p from the logical stream.
func (r *BinaryReader) readFull(p []byte) error {
	n := copy(p, r.pending)
	r.pending = r.pending[n:]
	r.off += int64(n)
	m, err := io.ReadFull(r.br, p[n:])
	r.off += int64(m)
	if err == io.EOF && n > 0 {
		err = io.ErrUnexpectedEOF
	}
	return err
}

// pushBack returns b to the front of the logical stream so the resync scan
// can look for frame markers inside bytes a corrupt length field swallowed.
func (r *BinaryReader) pushBack(b []byte) {
	r.off -= int64(len(b))
	if len(r.pending) == 0 {
		r.pending = append([]byte(nil), b...)
		return
	}
	np := make([]byte, 0, len(b)+len(r.pending))
	np = append(np, b...)
	np = append(np, r.pending...)
	r.pending = np
}

// syncMarker consumes the stream up to and including the next frame marker,
// returning how many bytes were discarded before it. io.EOF means the
// stream ended first (discarded bytes are still reported).
func (r *BinaryReader) syncMarker() (int64, error) {
	var w [4]byte
	n := 0
	var skipped int64
	for {
		b, err := r.readByte()
		if err != nil {
			return skipped + int64(n), err
		}
		if n == 4 {
			skipped++
			w[0], w[1], w[2], w[3] = w[1], w[2], w[3], b
		} else {
			w[n] = b
			n++
		}
		if n == 4 && w == frameMarker {
			return skipped, nil
		}
	}
}

// readFrameRaw parses one frame after its marker has been consumed. On an
// integrity failure it returns a *CorruptionError; when the failure could
// have swallowed later frames (a corrupt length field), the consumed bytes
// are pushed back for the resync scan.
func (r *BinaryReader) readFrameRaw() (byte, []byte, error) {
	frameOff := r.off - int64(len(frameMarker))
	var hdr [9]byte
	if err := r.readFull(hdr[:]); err != nil {
		return 0, nil, &CorruptionError{Offset: frameOff, Frame: r.frameSeq,
			Reason: "frame truncated in header"}
	}
	kind := hdr[0]
	length := binary.LittleEndian.Uint32(hdr[1:5])
	wantCRC := binary.LittleEndian.Uint32(hdr[5:9])
	if length > maxFramePayload {
		r.pushBack(hdr[:])
		return 0, nil, &CorruptionError{Offset: frameOff, Frame: r.frameSeq,
			Reason: fmt.Sprintf("implausible frame length %d", length)}
	}
	payload := make([]byte, length)
	if err := r.readFull(payload); err != nil {
		return 0, nil, &CorruptionError{Offset: frameOff, Frame: r.frameSeq,
			Reason: fmt.Sprintf("frame truncated: %v", err)}
	}
	sum := crc32.ChecksumIEEE(hdr[0:5])
	sum = crc32.Update(sum, crc32.IEEETable, payload)
	if sum != wantCRC {
		// The length field itself may be corrupt: rescan everything after
		// the marker for swallowed frames.
		r.pushBack(payload)
		r.pushBack(hdr[:])
		return 0, nil, &CorruptionError{Offset: frameOff, Frame: r.frameSeq,
			Reason: fmt.Sprintf("crc mismatch: computed %08x, stored %08x", sum, wantCRC)}
	}
	return kind, payload, nil
}

// readHeaderV2 parses the mandatory header frame. Header corruption is
// unrecoverable regardless of leniency: without the symbol table no call
// event can be resolved.
func (r *BinaryReader) readHeaderV2() error {
	skipped, err := r.syncMarker()
	if err != nil {
		return fmt.Errorf("trace: reading header frame: %w", eofUnexpected(err))
	}
	if skipped > 0 {
		return &CorruptionError{Offset: int64(len(binaryMagicV2)), Frame: 0,
			Reason: fmt.Sprintf("%d stray bytes before header frame", skipped)}
	}
	kind, payload, err := r.readFrameRaw()
	if err != nil {
		return err
	}
	if kind != frameHeader {
		return &CorruptionError{Offset: int64(len(binaryMagicV2)), Frame: 0,
			Reason: fmt.Sprintf("first frame has kind %d, want header", kind)}
	}
	cur := bytes.NewReader(payload)
	seq, err := binary.ReadUvarint(cur)
	if err != nil || seq != 0 {
		return &CorruptionError{Offset: int64(len(binaryMagicV2)), Frame: 0,
			Reason: "malformed header frame sequence number"}
	}
	syms, err := readSymbolTable(cur)
	if err != nil {
		return err
	}
	total, err := binary.ReadUvarint(cur)
	if err != nil {
		return fmt.Errorf("trace: event count: %w", eofUnexpected(err))
	}
	r.syms = syms
	r.total = total
	r.frameSeq = 1
	r.expectSeq = 1
	return nil
}

// corrupt records or returns a corruption, per mode. The returned error is
// nil in lenient mode (the caller should resync and continue).
func (r *BinaryReader) corrupt(e *CorruptionError) error {
	if !r.lenient {
		return e
	}
	r.stats.record(e)
	return nil
}

// terminate ends the stream, accounting for any events the header promised
// but the stream never delivered.
func (r *BinaryReader) terminate(truncated bool) {
	r.done = true
	if truncated {
		r.stats.Truncated = true
	}
	if r.lenient && r.total > r.index {
		r.stats.EventsDropped += int(r.total - r.index)
		r.index = r.total
	}
}

// nextFrame advances to the next events frame, handling resync, frame
// accounting and the end-of-trace frame. It returns false when the stream
// is exhausted.
func (r *BinaryReader) nextFrame() (bool, error) {
	for {
		skipped, err := r.syncMarker()
		if skipped > 0 {
			r.resyncs++
			r.stats.BytesSkipped += skipped
			if cerr := r.corrupt(&CorruptionError{Offset: r.off, Frame: r.frameSeq,
				Reason: fmt.Sprintf("skipped %d bytes to next frame marker", skipped)}); cerr != nil {
				return false, cerr
			}
		}
		if err != nil { // io.EOF: stream ended without an end frame
			if !r.lenient {
				r.done = true
				return false, &CorruptionError{Offset: r.off, Frame: r.frameSeq,
					Reason: "stream ends without end-of-trace frame"}
			}
			r.stats.record(&CorruptionError{Offset: r.off, Frame: r.frameSeq,
				Reason: "stream ends without end-of-trace frame"})
			r.terminate(true)
			return false, nil
		}
		r.frameSeq++
		kind, payload, rerr := r.readFrameRaw()
		if rerr != nil {
			cerr := rerr.(*CorruptionError)
			truncated := r.atEOF()
			if err := r.corrupt(cerr); err != nil {
				r.done = true
				return false, err
			}
			if truncated {
				// Nothing follows: the partially present frame is lost.
				r.stats.FramesDropped++
				r.terminate(true)
				return false, nil
			}
			continue
		}
		cur := bytes.NewReader(payload)
		seq, serr := binary.ReadUvarint(cur)
		if serr != nil {
			if err := r.corrupt(&CorruptionError{Offset: r.off, Frame: r.frameSeq,
				Reason: "malformed frame sequence number"}); err != nil {
				return false, err
			}
			r.stats.FramesDropped++
			continue
		}
		switch {
		case seq > r.expectSeq:
			// Frames between expectSeq and seq were destroyed; the gap is
			// the exact count, whatever the damage hit.
			gap := int(seq - r.expectSeq)
			r.stats.FramesDropped += gap
			if err := r.corrupt(&CorruptionError{Offset: r.off, Frame: r.frameSeq,
				Reason: fmt.Sprintf("%d frames missing before sequence %d", gap, seq)}); err != nil {
				return false, err
			}
		case seq < r.expectSeq:
			// A stale or duplicated frame (e.g. resync landed on a marker
			// inside an already-consumed region): ignore it.
			if err := r.corrupt(&CorruptionError{Offset: r.off, Frame: r.frameSeq,
				Reason: fmt.Sprintf("out-of-order frame sequence %d (expected %d)", seq, r.expectSeq)}); err != nil {
				return false, err
			}
			continue
		}
		r.expectSeq = seq + 1

		switch kind {
		case frameEnd:
			r.terminate(false)
			return false, nil
		case frameEvents:
			ok, err := r.decodeEventsFrame(cur)
			if err != nil {
				return false, err
			}
			if !ok {
				continue
			}
			r.framesDecoded++
			return true, nil
		case frameHeader:
			if err := r.corrupt(&CorruptionError{Offset: r.off, Frame: r.frameSeq,
				Reason: "unexpected header frame mid-stream"}); err != nil {
				return false, err
			}
			continue
		default:
			// Unknown kind with a valid CRC: a future extension — skip.
			continue
		}
	}
}

// atEOF reports whether the logical stream is exhausted (replay buffer
// empty and the underlying reader at EOF).
func (r *BinaryReader) atEOF() bool {
	if len(r.pending) > 0 {
		return false
	}
	_, err := r.br.Peek(1)
	return err != nil
}

// decodeEventsFrame decodes an events frame payload (cursor positioned
// after the sequence number) into r.frame. A decode failure inside a
// CRC-valid frame indicates a malformed writer; the whole frame is dropped
// in lenient mode.
func (r *BinaryReader) decodeEventsFrame(cur *bytes.Reader) (bool, error) {
	fail := func(reason string) (bool, error) {
		err := r.corrupt(&CorruptionError{Offset: r.off, Frame: r.frameSeq, Reason: reason})
		if err != nil {
			return false, err
		}
		r.stats.FramesDropped++
		return false, nil
	}
	firstIndex, err := binary.ReadUvarint(cur)
	if err != nil {
		return fail("malformed events frame: first index")
	}
	count, err := binary.ReadUvarint(cur)
	if err != nil || count > maxFrameEventCount {
		return fail("malformed events frame: event count")
	}
	baseTime, err := binary.ReadUvarint(cur)
	if err != nil {
		return fail("malformed events frame: base time")
	}
	if firstIndex < r.index {
		return fail(fmt.Sprintf("events frame rewinds to index %d (at %d)", firstIndex, r.index))
	}
	events := r.frame[:0]
	if cap(events) < int(count) {
		events = make([]Event, 0, count)
	}
	prev := baseTime
	var ev Event
	for j := uint64(0); j < count; j++ {
		if err := decodeEventBody(cur, r.syms, &prev, firstIndex+j, &ev); err != nil {
			return fail(fmt.Sprintf("event decode inside checksummed frame: %v", err))
		}
		events = append(events, ev)
	}
	if cur.Len() != 0 {
		return fail(fmt.Sprintf("%d trailing bytes in events frame", cur.Len()))
	}
	if firstIndex > r.index {
		// Events between r.index and firstIndex were inside dropped frames.
		if cerr := r.corrupt(&CorruptionError{Offset: r.off, Frame: r.frameSeq,
			Reason: fmt.Sprintf("%d events missing before index %d", firstIndex-r.index, firstIndex)}); cerr != nil {
			return false, cerr
		}
		r.stats.EventsDropped += int(firstIndex - r.index)
		r.index = firstIndex
	}
	r.frame = events
	r.framePos = 0
	return true, nil
}

func (r *BinaryReader) nextV2(ev *Event) (bool, error) {
	for r.framePos >= len(r.frame) {
		if r.done {
			return false, nil
		}
		more, err := r.nextFrame()
		if err != nil {
			return false, err
		}
		if !more {
			return false, nil
		}
	}
	*ev = r.frame[r.framePos]
	r.framePos++
	r.index++
	return true, nil
}
