package trace

import "fmt"

// SymbolTable maps routine names to compact RoutineIDs and back. IDs are
// assigned densely in registration order, so they can index slices.
type SymbolTable struct {
	names []string
	ids   map[string]RoutineID
}

// NewSymbolTable returns an empty symbol table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{ids: make(map[string]RoutineID)}
}

// Intern returns the id for name, registering it if needed.
func (s *SymbolTable) Intern(name string) RoutineID {
	if id, ok := s.ids[name]; ok {
		return id
	}
	id := RoutineID(len(s.names))
	s.names = append(s.names, name)
	s.ids[name] = id
	return id
}

// Lookup returns the id for name and whether it is registered.
func (s *SymbolTable) Lookup(name string) (RoutineID, bool) {
	id, ok := s.ids[name]
	return id, ok
}

// Name returns the name for id, or a synthetic placeholder if id was never
// registered (which indicates a malformed trace).
func (s *SymbolTable) Name(id RoutineID) string {
	if int(id) < len(s.names) {
		return s.names[id]
	}
	return fmt.Sprintf("routine#%d", id)
}

// Len returns the number of registered routines.
func (s *SymbolTable) Len() int { return len(s.names) }

// Names returns the registered names in id order. The returned slice is a
// copy.
func (s *SymbolTable) Names() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Clone returns an independent copy of the table.
func (s *SymbolTable) Clone() *SymbolTable {
	c := NewSymbolTable()
	for _, n := range s.names {
		c.Intern(n)
	}
	return c
}
