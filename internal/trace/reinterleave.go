package trace

import "math/rand"

// Reinterleave produces an alternative legal interleaving of a merged trace:
// per-thread event order is preserved exactly, but events of different
// threads may swap their relative order within a bounded window. It models
// re-running the program under a perturbed scheduler configuration, which
// the paper uses to study how scheduling affects the drms (§4.2: external
// input stays stable; thread input fluctuates by a few percent on average).
//
// The default window is 8 events; ReinterleaveWindow exposes it. A larger
// window perturbs more aggressively (a window on the order of the trace
// length approaches an arbitrary re-draw, which no real scheduler produces).
func Reinterleave(tr *Trace, seed int64) *Trace {
	return ReinterleaveWindow(tr, seed, 8)
}

// ReinterleaveWindow reinterleaves with an explicit perturbation window: an
// event may move up to `window` positions relative to events of other
// threads. Per-thread order is always preserved.
func ReinterleaveWindow(tr *Trace, seed int64, window int) *Trace {
	if window < 1 {
		window = 1
	}
	rng := rand.New(rand.NewSource(seed))

	// Assign each non-switch event its global position in the original
	// merged order, jittered within the window; per-thread monotonicity is
	// restored with a running maximum so each thread's stream stays intact.
	parts := Split(tr)
	cursors := make(map[ThreadID]int, len(parts))
	byThread := make(map[ThreadID][]Event, len(parts))
	for i := range parts {
		byThread[parts[i].Thread] = parts[i].Events
	}
	lastTime := make(map[ThreadID]uint64, len(parts))
	pos := uint64(0)
	for i := range tr.Events {
		src := &tr.Events[i]
		if src.Kind == KindSwitchThread {
			continue
		}
		pos++
		events := byThread[src.Thread]
		j := cursors[src.Thread]
		cursors[src.Thread] = j + 1
		t := pos + uint64(rng.Intn(window))
		if t < lastTime[src.Thread] {
			t = lastTime[src.Thread]
		}
		lastTime[src.Thread] = t
		events[j].Time = t
	}
	return Merge(tr.Symbols, parts, seed)
}
