package trace

import "testing"

func buildFilterFixture() *Trace {
	b := NewBuilder()
	t1 := b.Thread(1)
	t2 := b.Thread(2)
	t1.Call("main")
	t2.Call("worker")
	t1.Call("query")
	t1.Read(100, 4)
	t2.Write(200, 2)
	t1.Call("scan")
	t1.Read(300, 8)
	t1.Ret()
	t1.Ret()
	t2.Read(200, 2)
	t1.Call("update")
	t1.Write(400, 1)
	t1.Ret()
	t1.Ret()
	t2.Ret()
	return b.Trace()
}

func TestFilterThreads(t *testing.T) {
	tr := buildFilterFixture()
	only1 := FilterThreads(tr, 1)
	if err := only1.Validate(); err != nil {
		t.Fatalf("filtered trace invalid: %v", err)
	}
	for _, ev := range only1.Events {
		if ev.Thread != 1 {
			t.Fatalf("event from thread %d survived the filter", ev.Thread)
		}
	}
	if n := len(Split(only1)); n != 1 {
		t.Errorf("filtered trace has %d threads, want 1", n)
	}
	// No switch events remain in a single-thread trace.
	for _, ev := range only1.Events {
		if ev.Kind == KindSwitchThread {
			t.Error("switch event in single-thread slice")
		}
	}
	// Keeping both threads preserves all non-switch events.
	both := FilterThreads(tr, 1, 2)
	orig := 0
	for _, ev := range tr.Events {
		if ev.Kind != KindSwitchThread {
			orig++
		}
	}
	got := 0
	for _, ev := range both.Events {
		if ev.Kind != KindSwitchThread {
			got++
		}
	}
	if got != orig {
		t.Errorf("keep-all filter lost events: %d vs %d", got, orig)
	}
}

func TestTimeWindow(t *testing.T) {
	tr := buildFilterFixture()
	full := TimeWindow(tr, 0, 1<<60)
	if err := full.Validate(); err != nil {
		t.Fatalf("full window invalid: %v", err)
	}

	// A window starting mid-trace: returns without calls must be dropped
	// and pending calls closed.
	mid := tr.Events[len(tr.Events)/2].Time
	tail := TimeWindow(tr, mid, 1<<60)
	if err := tail.Validate(); err != nil {
		t.Fatalf("tail window invalid: %v", err)
	}
	head := TimeWindow(tr, 0, mid)
	if err := head.Validate(); err != nil {
		t.Fatalf("head window invalid: %v", err)
	}
	if head.Len() == 0 || tail.Len() == 0 {
		t.Error("windows unexpectedly empty")
	}
	empty := TimeWindow(tr, 1<<60, 1<<61)
	if empty.Len() != 0 {
		t.Errorf("out-of-range window has %d events", empty.Len())
	}
}

func TestFilterRoutine(t *testing.T) {
	tr := buildFilterFixture()
	q := FilterRoutine(tr, tr.Symbols, "query")
	if err := q.Validate(); err != nil {
		t.Fatalf("routine slice invalid: %v", err)
	}
	// The slice contains query and its nested scan, nothing else.
	names := map[string]bool{}
	var reads, writes int
	for _, ev := range q.Events {
		switch ev.Kind {
		case KindCall:
			names[q.Symbols.Name(ev.Routine)] = true
		case KindRead:
			reads++
		case KindWrite:
			writes++
		}
	}
	if !names["query"] || !names["scan"] {
		t.Errorf("slice routines = %v, want query and scan", names)
	}
	if names["update"] || names["worker"] || names["main"] {
		t.Errorf("slice contains foreign routines: %v", names)
	}
	if reads != 2 || writes != 0 {
		t.Errorf("slice has %d reads, %d writes; want 2 and 0", reads, writes)
	}
	// Unknown routine: empty slice.
	if got := FilterRoutine(tr, tr.Symbols, "nonexistent"); got.Len() != 0 {
		t.Errorf("unknown-routine slice has %d events", got.Len())
	}
}
