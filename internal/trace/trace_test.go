package trace

import (
	"strings"
	"testing"
)

func TestBuilderInsertsSwitchEvents(t *testing.T) {
	b := NewBuilder()
	t1 := b.Thread(1)
	t2 := b.Thread(2)
	t1.Call("main")
	t1.Write1(10)
	t2.Call("worker")
	t2.Read1(10)
	t1.Read1(10)
	t1.Ret()
	t2.Ret()
	tr := b.Trace()

	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	switches := 0
	var prev ThreadID
	started := false
	for i, ev := range tr.Events {
		if ev.Kind == KindSwitchThread {
			switches++
			if i == 0 {
				t.Error("switch event before any operation")
			}
			continue
		}
		if started && ev.Thread != prev {
			if tr.Events[i-1].Kind != KindSwitchThread {
				t.Errorf("event %d: thread change %d->%d without switch", i, prev, ev.Thread)
			}
		}
		prev = ev.Thread
		started = true
	}
	// Thread changes: 1->2, 2->1, 1->2 plus the dangling-close transitions.
	if switches < 3 {
		t.Errorf("got %d switch events, want at least 3", switches)
	}
}

func TestBuilderTimesStrictlyIncrease(t *testing.T) {
	b := NewBuilder()
	tb := b.Thread(0)
	tb.Call("f")
	for i := 0; i < 100; i++ {
		tb.Write1(Addr(uint64(i)))
		tb.Read1(Addr(uint64(i)))
	}
	tb.Ret()
	tr := b.Trace()
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Time <= tr.Events[i-1].Time {
			t.Fatalf("event %d: time %d not greater than %d", i, tr.Events[i].Time, tr.Events[i-1].Time)
		}
	}
}

func TestBuilderClosesDanglingActivations(t *testing.T) {
	b := NewBuilder()
	tb := b.Thread(0)
	tb.Call("a")
	tb.Call("b")
	tb.Call("c")
	tr := b.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	returns := 0
	for _, ev := range tr.Events {
		if ev.Kind == KindReturn {
			returns++
		}
	}
	if returns != 3 {
		t.Errorf("got %d synthetic returns, want 3", returns)
	}
}

func TestBuilderPanicsAfterTrace(t *testing.T) {
	b := NewBuilder()
	tb := b.Thread(0)
	tb.Call("f")
	_ = b.Trace()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on use after Trace()")
		}
	}()
	tb.Read1(0)
}

func TestBuilderRetPanicsOnEmptyStack(t *testing.T) {
	b := NewBuilder()
	tb := b.Thread(0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on Ret with empty stack")
		}
	}()
	tb.Ret()
}

func TestValidateRejectsMalformedTraces(t *testing.T) {
	syms := NewSymbolTable()
	f := syms.Intern("f")

	cases := []struct {
		name   string
		events []Event
	}{
		{"unregistered routine", []Event{
			{Kind: KindCall, Routine: 99, Time: 1},
		}},
		{"return without call", []Event{
			{Kind: KindReturn, Time: 1},
		}},
		{"decreasing time", []Event{
			{Kind: KindCall, Routine: f, Time: 5},
			{Kind: KindRead, Addr: 1, Size: 1, Time: 4},
		}},
		{"decreasing cost", []Event{
			{Kind: KindCall, Routine: f, Time: 1, Cost: 10},
			{Kind: KindRead, Addr: 1, Size: 1, Time: 2, Cost: 5},
		}},
		{"zero-size read", []Event{
			{Kind: KindCall, Routine: f, Time: 1},
			{Kind: KindRead, Addr: 1, Size: 0, Time: 2},
		}},
		{"invalid kind", []Event{
			{Kind: Kind(200), Time: 1},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := &Trace{Symbols: syms, Events: tc.events}
			if err := tr.Validate(); err == nil {
				t.Error("Validate accepted a malformed trace")
			}
		})
	}
}

func TestMemoryFootprint(t *testing.T) {
	b := NewBuilder()
	tb := b.Thread(0)
	tb.Call("f")
	tb.Write(100, 10) // cells 100..109
	tb.Read(105, 10)  // cells 105..114: 5 new
	tb.SysRead(200, 4)
	tb.Ret()
	tr := b.Trace()
	if got := tr.MemoryFootprint(); got != 19 {
		t.Errorf("MemoryFootprint = %d, want 19", got)
	}
}

func TestSymbolTable(t *testing.T) {
	s := NewSymbolTable()
	a := s.Intern("alpha")
	b := s.Intern("beta")
	if a == b {
		t.Fatal("distinct names share an id")
	}
	if got := s.Intern("alpha"); got != a {
		t.Errorf("re-Intern returned %d, want %d", got, a)
	}
	if name := s.Name(b); name != "beta" {
		t.Errorf("Name(%d) = %q, want beta", b, name)
	}
	if _, ok := s.Lookup("gamma"); ok {
		t.Error("Lookup found unregistered name")
	}
	if !strings.HasPrefix(s.Name(RoutineID(42)), "routine#") {
		t.Error("unknown id should produce a placeholder name")
	}
	c := s.Clone()
	c.Intern("gamma")
	if s.Len() != 2 || c.Len() != 3 {
		t.Errorf("Clone not independent: orig %d, clone %d", s.Len(), c.Len())
	}
}

func TestEventCells(t *testing.T) {
	ev := Event{Kind: KindRead, Addr: 10, Size: 3}
	var got []Addr
	ev.Cells(func(a Addr) { got = append(got, a) })
	want := []Addr{10, 11, 12}
	if len(got) != len(want) {
		t.Fatalf("Cells visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Cells visited %v, want %v", got, want)
		}
	}
	callEv := Event{Kind: KindCall}
	callEv.Cells(func(Addr) { t.Error("call event should touch no cells") })
}

func TestThreadsOrder(t *testing.T) {
	b := NewBuilder()
	b.Thread(5).Call("f")
	b.Thread(2).Call("g")
	b.Thread(5).Read1(1)
	tr := b.Trace()
	ids := tr.Threads()
	if len(ids) != 2 || ids[0] != 5 || ids[1] != 2 {
		t.Errorf("Threads() = %v, want [5 2]", ids)
	}
}
