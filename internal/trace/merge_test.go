package trace

import (
	"math/rand"
	"testing"
)

func makeThreadTrace(id ThreadID, syms *SymbolTable, times []uint64) ThreadTrace {
	tt := ThreadTrace{Thread: id}
	rtn := syms.Intern("main")
	tt.Events = append(tt.Events, Event{Kind: KindCall, Routine: rtn, Time: times[0], Thread: id})
	for _, ts := range times[1:] {
		tt.Events = append(tt.Events, Event{Kind: KindRead, Addr: Addr(ts), Size: 1, Time: ts, Thread: id})
	}
	return tt
}

func TestMergePreservesPerThreadOrder(t *testing.T) {
	syms := NewSymbolTable()
	parts := []ThreadTrace{
		makeThreadTrace(1, syms, []uint64{1, 4, 4, 9, 12}),
		makeThreadTrace(2, syms, []uint64{2, 4, 7, 9}),
		makeThreadTrace(3, syms, []uint64{4, 5, 6}),
	}
	merged := Merge(syms, parts, 42)
	if err := merged.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Per-thread subsequences must match the inputs exactly.
	split := Split(merged)
	if len(split) != 3 {
		t.Fatalf("Split returned %d threads, want 3", len(split))
	}
	for i, part := range split {
		orig := parts[i]
		if part.Thread != orig.Thread {
			t.Fatalf("thread %d: id %d, want %d", i, part.Thread, orig.Thread)
		}
		if len(part.Events) != len(orig.Events) {
			t.Fatalf("thread %d: %d events, want %d", part.Thread, len(part.Events), len(orig.Events))
		}
		for j := range part.Events {
			if part.Events[j].Kind != orig.Events[j].Kind || part.Events[j].Addr != orig.Events[j].Addr {
				t.Fatalf("thread %d event %d reordered", part.Thread, j)
			}
		}
	}
}

func TestMergeRespectsTimestamps(t *testing.T) {
	syms := NewSymbolTable()
	parts := []ThreadTrace{
		makeThreadTrace(1, syms, []uint64{1, 10, 20}),
		makeThreadTrace(2, syms, []uint64{5, 15, 25}),
	}
	merged := Merge(syms, parts, 7)
	// Reconstruct original timestamps by thread position and check global
	// order: an event with original time u must not precede one with time
	// v < u.
	type stamped struct {
		orig uint64
	}
	var seq []stamped
	idx := map[ThreadID]int{}
	for _, ev := range merged.Events {
		if ev.Kind == KindSwitchThread {
			continue
		}
		part := parts[ev.Thread-1]
		orig := part.Events[idx[ev.Thread]].Time
		idx[ev.Thread]++
		seq = append(seq, stamped{orig})
	}
	for i := 1; i < len(seq); i++ {
		if seq[i].orig < seq[i-1].orig {
			t.Fatalf("merged order violates timestamps at %d: %d after %d", i, seq[i].orig, seq[i-1].orig)
		}
	}
}

func TestMergeTieBreakingIsSeedDependentButComplete(t *testing.T) {
	syms := NewSymbolTable()
	build := func() []ThreadTrace {
		return []ThreadTrace{
			makeThreadTrace(1, syms, []uint64{1, 5, 5, 5}),
			makeThreadTrace(2, syms, []uint64{1, 5, 5, 5}),
		}
	}
	a := Merge(syms, build(), 1)
	b := Merge(syms, build(), 1)
	if len(a.Events) != len(b.Events) {
		t.Fatal("same seed produced different merges")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatal("same seed produced different merges")
		}
	}
	// All events survive regardless of seed.
	for seed := int64(0); seed < 10; seed++ {
		m := Merge(syms, build(), seed)
		n := 0
		for _, ev := range m.Events {
			if ev.Kind != KindSwitchThread {
				n++
			}
		}
		if n != 8 {
			t.Fatalf("seed %d: %d events after merge, want 8", seed, n)
		}
	}
}

func TestMergeRandomizedValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 50; iter++ {
		syms := NewSymbolTable()
		numThreads := 1 + rng.Intn(5)
		parts := make([]ThreadTrace, numThreads)
		for i := range parts {
			n := 1 + rng.Intn(20)
			times := make([]uint64, n)
			ts := uint64(1 + rng.Intn(3))
			for j := range times {
				times[j] = ts
				ts += uint64(rng.Intn(4))
			}
			parts[i] = makeThreadTrace(ThreadID(i+1), syms, times)
		}
		merged := Merge(syms, parts, int64(iter))
		if err := merged.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	syms := NewSymbolTable()
	merged := Merge(syms, nil, 0)
	if merged.Len() != 0 {
		t.Errorf("empty merge has %d events", merged.Len())
	}
}
