package trace

import (
	"math/rand"
	"sort"
)

// Merge interleaves per-thread traces into a single totally ordered trace,
// following §3 of the paper: events are ordered by their timestamps; if two
// or more operations issued by different threads carry the same timestamp,
// ties are broken arbitrarily (here: pseudo-randomly, from seed, so a merge
// is reproducible but no ordering may be assumed by callers); switchThread
// events are inserted between any two operations performed by different
// threads. Times in the merged trace are reassigned to the global sequence
// position so they are strictly increasing.
//
// The symbol table is shared: all ThreadTraces must have been built against
// syms.
func Merge(syms *SymbolTable, parts []ThreadTrace, seed int64) *Trace {
	total := 0
	for i := range parts {
		total += len(parts[i].Events)
	}
	out := &Trace{
		Symbols: syms,
		Events:  make([]Event, 0, total+total/4),
	}
	rng := rand.New(rand.NewSource(seed))

	// next[i] is the cursor into parts[i].
	next := make([]int, len(parts))
	// frontier holds the indices of parts whose next event has the minimal
	// timestamp; rebuilt on every pop.
	var frontier []int

	var (
		time    uint64
		last    ThreadID
		started bool
	)
	for {
		frontier = frontier[:0]
		best := uint64(0)
		for i := range parts {
			if next[i] >= len(parts[i].Events) {
				continue
			}
			ts := parts[i].Events[next[i]].Time
			switch {
			case len(frontier) == 0 || ts < best:
				frontier = append(frontier[:0], i)
				best = ts
			case ts == best:
				frontier = append(frontier, i)
			}
		}
		if len(frontier) == 0 {
			break
		}
		pick := frontier[rng.Intn(len(frontier))]
		ev := parts[pick].Events[next[pick]]
		next[pick]++

		ev.Thread = parts[pick].Thread
		if started && ev.Thread != last {
			time++
			out.Events = append(out.Events, Event{
				Kind:   KindSwitchThread,
				Thread: ev.Thread,
				Time:   time,
			})
		}
		started = true
		last = ev.Thread
		time++
		ev.Time = time
		out.Events = append(out.Events, ev)
	}
	return out
}

// Split decomposes a merged trace back into per-thread traces, dropping
// switchThread events and preserving each thread's event order and original
// timestamps. It is the inverse of Merge up to switch events and
// tie-breaking.
func Split(tr *Trace) []ThreadTrace {
	byThread := make(map[ThreadID]*ThreadTrace)
	var order []ThreadID
	for i := range tr.Events {
		ev := tr.Events[i]
		if ev.Kind == KindSwitchThread {
			continue
		}
		tt, ok := byThread[ev.Thread]
		if !ok {
			tt = &ThreadTrace{Thread: ev.Thread}
			byThread[ev.Thread] = tt
			order = append(order, ev.Thread)
		}
		tt.Events = append(tt.Events, ev)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]ThreadTrace, 0, len(order))
	for _, id := range order {
		out = append(out, *byThread[id])
	}
	return out
}
