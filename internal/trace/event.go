// Package trace defines the event vocabulary consumed by the profiler and
// the supporting machinery to construct, encode, merge and replay execution
// traces.
//
// The profiling algorithm of the paper ("Estimating the Empirical Cost
// Function of Routines with Dynamic Workloads", CGO 2014) is defined over a
// totally ordered trace of program operations: routine activations (call),
// routine completions (return), read/write memory accesses, and read/write
// operations performed through kernel system calls (userToKernel and
// kernelToUser). Per-thread traces are merged into a single trace by
// timestamp, with switchThread events inserted between operations of
// different threads. This package is the Go analogue of the instrumentation
// layer Valgrind provides to the paper's implementation.
package trace

import "fmt"

// ThreadID identifies an application thread. Thread 0 is conventionally the
// main thread. The OS kernel is not a thread: kernel-mediated accesses are
// modelled by the UserToKernel and KernelToUser event kinds.
type ThreadID int32

// Addr is the index of a memory cell. The profiler works at cell
// granularity, matching the paper's "distinct memory cells" phrasing; a cell
// stands for whatever unit the instrumentation traces (a byte or a word).
type Addr uint64

// RoutineID is a compact identifier for a routine, resolved to a name via a
// SymbolTable.
type RoutineID uint32

// Kind enumerates the event kinds of the paper's execution traces, plus the
// Acquire/Release synchronization events emitted by the VM's semaphore
// operations (used by the helgrind comparator and ignored by the profiler).
type Kind uint8

const (
	// KindCall marks the activation of routine Event.Routine by
	// Event.Thread.
	KindCall Kind = iota
	// KindReturn marks the completion of the topmost pending activation of
	// Event.Thread.
	KindReturn
	// KindRead is a memory read of Event.Size cells starting at Event.Addr.
	KindRead
	// KindWrite is a memory write of Event.Size cells starting at
	// Event.Addr.
	KindWrite
	// KindUserToKernel marks cells read by the OS kernel on behalf of the
	// thread (e.g. the buffer of a write(2) system call).
	KindUserToKernel
	// KindKernelToUser marks cells written by the OS kernel on behalf of the
	// thread (e.g. the buffer filled by a read(2) system call). This is the
	// external-input event.
	KindKernelToUser
	// KindSwitchThread marks a scheduler switch; Event.Thread is the thread
	// being switched in. Only merged traces contain switch events.
	KindSwitchThread
	// KindAcquire is a synchronization acquire on the object at Event.Addr
	// (semaphore wait). Used by race-detection comparators only.
	KindAcquire
	// KindRelease is a synchronization release on the object at Event.Addr
	// (semaphore signal). Used by race-detection comparators only.
	KindRelease

	numKinds = int(KindRelease) + 1

	// NumKinds is the number of defined event kinds, for consumers indexing
	// per-kind tables (e.g. the observability layer's per-kind counters).
	NumKinds = numKinds
)

var kindNames = [numKinds]string{
	KindCall:         "call",
	KindReturn:       "return",
	KindRead:         "read",
	KindWrite:        "write",
	KindUserToKernel: "userToKernel",
	KindKernelToUser: "kernelToUser",
	KindSwitchThread: "switchThread",
	KindAcquire:      "acquire",
	KindRelease:      "release",
}

// String returns the paper's name for the event kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is one of the defined kinds.
func (k Kind) Valid() bool { return int(k) < numKinds }

// Event is one operation of an execution trace.
type Event struct {
	// Time orders events. In a per-thread trace it is the thread-local
	// timestamp used for merging; in a merged trace it is the position-
	// consistent global timestamp.
	Time uint64
	// Cost is the issuing thread's cumulative cost (executed basic blocks)
	// at the moment of the event. Cost is non-decreasing per thread.
	Cost uint64
	// Addr is the first cell touched by memory and kernel events, or the
	// synchronization object of acquire/release events.
	Addr Addr
	// Size is the number of consecutive cells touched by memory and kernel
	// events.
	Size uint32
	// Routine is the callee of a call event.
	Routine RoutineID
	// Thread is the issuing thread (the incoming thread for switch events).
	Thread ThreadID
	// Kind discriminates the event.
	Kind Kind
}

// String renders the event in the compact text form used by the codec.
func (e Event) String() string {
	switch e.Kind {
	case KindCall:
		return fmt.Sprintf("t%d@%d c%d call r%d", e.Thread, e.Time, e.Cost, e.Routine)
	case KindReturn:
		return fmt.Sprintf("t%d@%d c%d return", e.Thread, e.Time, e.Cost)
	case KindSwitchThread:
		return fmt.Sprintf("t%d@%d c%d switchThread", e.Thread, e.Time, e.Cost)
	case KindAcquire, KindRelease:
		return fmt.Sprintf("t%d@%d c%d %s %d", e.Thread, e.Time, e.Cost, e.Kind, e.Addr)
	default:
		return fmt.Sprintf("t%d@%d c%d %s %d+%d", e.Thread, e.Time, e.Cost, e.Kind, e.Addr, e.Size)
	}
}

// Cells calls fn for every cell touched by a memory or kernel event, in
// ascending address order. Events of other kinds touch no cells.
func (e Event) Cells(fn func(Addr)) {
	switch e.Kind {
	case KindRead, KindWrite, KindUserToKernel, KindKernelToUser:
		for i := uint32(0); i < e.Size; i++ {
			fn(e.Addr + Addr(i))
		}
	}
}

// IsMemory reports whether the event touches application memory cells.
func (e Event) IsMemory() bool {
	switch e.Kind {
	case KindRead, KindWrite, KindUserToKernel, KindKernelToUser:
		return true
	}
	return false
}
