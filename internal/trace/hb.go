package trace

import "math/rand"

// ReinterleaveSync produces an alternative interleaving that respects the
// trace's synchronization: per-thread order is preserved, and an acquire on
// a semaphore is never scheduled before the releases that supply its tokens.
// Within those constraints the scheduler picks randomly among the threads
// whose next event lies within `window` positions of the earliest ready
// unscheduled event, modelling a bounded scheduler perturbation.
//
// This mirrors what varying Valgrind's scheduling configuration does to a
// properly synchronized application (§4.2): semaphore-ordered communication
// cannot reorder, so the drms fluctuation across runs comes only from
// genuinely racy accesses.
func ReinterleaveSync(tr *Trace, seed int64, window int) *Trace {
	if window < 1 {
		window = 1
	}
	rng := rand.New(rand.NewSource(seed))

	// Per-thread event streams with each event's original global position.
	type stream struct {
		events []Event
		pos    []int
		next   int
	}
	var threads []*stream
	index := make(map[ThreadID]*stream)
	pos := 0
	for i := range tr.Events {
		ev := tr.Events[i]
		if ev.Kind == KindSwitchThread {
			continue
		}
		s := index[ev.Thread]
		if s == nil {
			s = &stream{}
			index[ev.Thread] = s
			threads = append(threads, s)
		}
		s.events = append(s.events, ev)
		s.pos = append(s.pos, pos)
		pos++
	}

	// Pre-simulate the original order to learn each semaphore's implicit
	// initial token count: an acquire observed with zero outstanding
	// releases must have consumed an initial token.
	initial := make(map[Addr]int)
	sim := make(map[Addr]int)
	for i := range tr.Events {
		ev := &tr.Events[i]
		switch ev.Kind {
		case KindRelease:
			sim[ev.Addr]++
		case KindAcquire:
			if sim[ev.Addr] == 0 {
				initial[ev.Addr]++
			} else {
				sim[ev.Addr]--
			}
		}
	}

	avail := make(map[Addr]int, len(initial))
	for o, n := range initial {
		avail[o] = n
	}

	scheduled := make([]Event, 0, pos)
	emit := func(s *stream) {
		ev := s.events[s.next]
		s.next++
		switch ev.Kind {
		case KindRelease:
			avail[ev.Addr]++
		case KindAcquire:
			avail[ev.Addr]--
		}
		scheduled = append(scheduled, ev)
	}

	for {
		var (
			oldest      *stream // globally earliest unscheduled event
			oldestPos   = -1
			minReadyPos = -1
			ready       []*stream
		)
		for _, s := range threads {
			if s.next >= len(s.events) {
				continue
			}
			p := s.pos[s.next]
			if oldestPos < 0 || p < oldestPos {
				oldestPos = p
				oldest = s
			}
			ev := &s.events[s.next]
			if ev.Kind == KindAcquire && avail[ev.Addr] <= 0 {
				continue
			}
			if minReadyPos < 0 || p < minReadyPos {
				minReadyPos = p
			}
			ready = append(ready, s)
		}
		if oldest == nil {
			break // every event scheduled
		}
		var candidates []*stream
		for _, s := range ready {
			if s.pos[s.next] <= minReadyPos+window {
				candidates = append(candidates, s)
			}
		}
		if len(candidates) == 0 {
			// Every thread is blocked on an acquire. The original order is
			// always a legal continuation, so force its earliest event (the
			// token bookkeeping is conservative; the original execution
			// proves the acquire was grantable).
			emit(oldest)
			continue
		}
		emit(candidates[rng.Intn(len(candidates))])
	}

	// Renumber times and reinsert switchThread events.
	out := &Trace{Symbols: tr.Symbols, Events: make([]Event, 0, len(scheduled)+len(scheduled)/4)}
	var (
		time    uint64
		last    ThreadID
		started bool
	)
	for _, ev := range scheduled {
		if started && ev.Thread != last {
			time++
			out.Events = append(out.Events, Event{
				Kind:   KindSwitchThread,
				Thread: ev.Thread,
				Time:   time,
			})
		}
		started = true
		last = ev.Thread
		time++
		ev.Time = time
		out.Events = append(out.Events, ev)
	}
	return out
}
