package trace

import "fmt"

// Builder constructs a merged trace programmatically. Workload generators
// drive one ThreadBuilder per simulated thread; the builder linearizes
// operations in call order and inserts switchThread events between
// operations of different threads, exactly as the paper's merged traces
// require. This stands in for observing a real interleaved execution: the
// interleaving is whatever order the generator issues operations in.
type Builder struct {
	tr      *Trace
	time    uint64
	last    ThreadID
	started bool
	noAuto  bool
	threads map[ThreadID]*ThreadBuilder
}

// AutoCost controls whether every emitted operation implicitly advances the
// issuing thread's cost by one basic block (the default, suitable for
// programmatic workload generators where one operation stands for one
// block). The VM disables it and drives costs explicitly from its own
// basic-block counter via ThreadBuilder.SetCost.
func (b *Builder) AutoCost(enabled bool) { b.noAuto = !enabled }

// NewBuilder returns a Builder with an empty trace.
func NewBuilder() *Builder {
	return &Builder{
		tr:      NewTrace(),
		threads: make(map[ThreadID]*ThreadBuilder),
	}
}

// Symbols exposes the symbol table of the trace under construction.
func (b *Builder) Symbols() *SymbolTable { return b.tr.Symbols }

// Thread returns the builder for thread id, creating it on first use.
func (b *Builder) Thread(id ThreadID) *ThreadBuilder {
	if tb, ok := b.threads[id]; ok {
		return tb
	}
	tb := &ThreadBuilder{b: b, id: id}
	b.threads[id] = tb
	return tb
}

// Trace finalizes and returns the built trace. Pending activations are
// closed with synthetic returns so that every activation is collected. The
// builder must not be used afterwards.
func (b *Builder) Trace() *Trace {
	b.tr.CloseDangling()
	tr := b.tr
	b.tr = nil
	return tr
}

// emit appends ev, inserting a switchThread event first if the issuing
// thread differs from the previous one.
func (b *Builder) emit(ev Event) {
	if b.tr == nil {
		panic("trace: Builder used after Trace()")
	}
	if b.started && ev.Thread != b.last {
		b.time++
		b.tr.Events = append(b.tr.Events, Event{
			Kind:   KindSwitchThread,
			Thread: ev.Thread,
			Time:   b.time,
		})
	}
	b.started = true
	b.last = ev.Thread
	b.time++
	ev.Time = b.time
	b.tr.Events = append(b.tr.Events, ev)
}

// ThreadBuilder issues the operations of one thread.
type ThreadBuilder struct {
	b     *Builder
	id    ThreadID
	cost  uint64
	depth int
}

// ID returns the thread id.
func (t *ThreadBuilder) ID() ThreadID { return t.id }

// Cost returns the thread's cumulative cost so far.
func (t *ThreadBuilder) Cost() uint64 { return t.cost }

// Depth returns the thread's current call-stack depth.
func (t *ThreadBuilder) Depth() int { return t.depth }

// Work advances the thread's cost by n executed basic blocks.
func (t *ThreadBuilder) Work(n uint64) { t.cost += n }

// SetCost sets the thread's cumulative cost to c. It panics if c would make
// the cost decrease. Used by instrumentation layers (the VM) that count
// basic blocks themselves.
func (t *ThreadBuilder) SetCost(c uint64) {
	if c < t.cost {
		panic(fmt.Sprintf("trace: thread %d: SetCost(%d) below current cost %d", t.id, c, t.cost))
	}
	t.cost = c
}

// bump advances the cost by one operation unless the builder is in
// explicit-cost mode.
func (t *ThreadBuilder) bump() {
	if !t.b.noAuto {
		t.cost++
	}
}

// Call activates the routine with the given name. Every operation costs one
// basic block, so Call also advances the cost by one.
func (t *ThreadBuilder) Call(name string) {
	t.bump()
	t.depth++
	t.b.emit(Event{
		Kind:    KindCall,
		Thread:  t.id,
		Routine: t.b.tr.Symbols.Intern(name),
		Cost:    t.cost,
	})
}

// Ret completes the topmost pending activation.
func (t *ThreadBuilder) Ret() {
	if t.depth == 0 {
		panic(fmt.Sprintf("trace: thread %d: Ret with empty call stack", t.id))
	}
	t.bump()
	t.depth--
	t.b.emit(Event{Kind: KindReturn, Thread: t.id, Cost: t.cost})
}

// Read issues a read of size cells starting at addr.
func (t *ThreadBuilder) Read(addr Addr, size uint32) {
	t.bump()
	t.b.emit(Event{Kind: KindRead, Thread: t.id, Addr: addr, Size: size, Cost: t.cost})
}

// Write issues a write of size cells starting at addr.
func (t *ThreadBuilder) Write(addr Addr, size uint32) {
	t.bump()
	t.b.emit(Event{Kind: KindWrite, Thread: t.id, Addr: addr, Size: size, Cost: t.cost})
}

// Read1 reads the single cell at addr.
func (t *ThreadBuilder) Read1(addr Addr) { t.Read(addr, 1) }

// Write1 writes the single cell at addr.
func (t *ThreadBuilder) Write1(addr Addr) { t.Write(addr, 1) }

// SysRead models a read-like system call (read, recvfrom, pread64, readv,
// msgrcv, preadv): the kernel fills size cells at addr with external data,
// producing a kernelToUser event.
func (t *ThreadBuilder) SysRead(addr Addr, size uint32) {
	t.bump()
	t.b.emit(Event{Kind: KindKernelToUser, Thread: t.id, Addr: addr, Size: size, Cost: t.cost})
}

// SysWrite models a write-like system call (write, sendto, pwrite64, writev,
// msgsnd, pwritev): the kernel reads size cells at addr on the thread's
// behalf, producing a userToKernel event.
func (t *ThreadBuilder) SysWrite(addr Addr, size uint32) {
	t.bump()
	t.b.emit(Event{Kind: KindUserToKernel, Thread: t.id, Addr: addr, Size: size, Cost: t.cost})
}

// Acquire emits a synchronization acquire on the object at addr.
func (t *ThreadBuilder) Acquire(obj Addr) {
	t.bump()
	t.b.emit(Event{Kind: KindAcquire, Thread: t.id, Addr: obj, Cost: t.cost})
}

// Release emits a synchronization release on the object at addr.
func (t *ThreadBuilder) Release(obj Addr) {
	t.bump()
	t.b.emit(Event{Kind: KindRelease, Thread: t.id, Addr: obj, Cost: t.cost})
}
