package trace

import (
	"bytes"
	"testing"
)

// fuzzSeedTraces builds a few small valid traces used to seed the decoder
// fuzzers with structurally interesting inputs.
func fuzzSeedTraces() []*Trace {
	var out []*Trace

	b := NewBuilder()
	t1 := b.Thread(1)
	t1.Call("main")
	t1.Read(0x100, 8)
	t1.Ret()
	out = append(out, b.Trace())

	b = NewBuilder()
	t1, t2 := b.Thread(1), b.Thread(2)
	t1.Call("producer")
	t2.Call("consumer")
	t1.Write1(7)
	t2.Read1(7)
	t1.SysRead(40, 4)
	t2.SysWrite(40, 4)
	t1.Acquire(1)
	t1.Release(1)
	out = append(out, b.Trace())

	out = append(out, Random(RandomConfig{Seed: 9, Ops: 60}))
	return out
}

// FuzzReadTrace fuzzes the binary trace decoder: arbitrary bytes must
// decode or fail with an error — never panic — and whatever decodes must
// pass structural validation well enough to re-encode. The same bytes are
// also fed through the lenient APT2 path, which must terminate cleanly on
// any input.
func FuzzReadTrace(f *testing.F) {
	for _, tr := range fuzzSeedTraces() {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		buf.Reset()
		if err := WriteBinary2Opts(&buf, tr, V2Options{EventsPerFrame: 4}); err != nil {
			f.Fatal(err)
		}
		enc := buf.Bytes()
		f.Add(append([]byte(nil), enc...))
		// Corrupt-CRC and truncated-frame variants of the framed stream.
		if len(enc) > 20 {
			bad := append([]byte(nil), enc...)
			bad[len(bad)/2] ^= 0x40
			f.Add(bad)
			f.Add(append([]byte(nil), enc[:len(enc)*2/3]...))
		}
	}
	f.Add([]byte("APT1"))
	f.Add([]byte("APT2"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err == nil {
			// The decoder validates kinds and routine ids; Validate and the
			// encoder must cope with anything else it lets through.
			_ = tr.Validate()
			_ = WriteBinary(&bytes.Buffer{}, tr)
		}
		// Lenient mode must never panic or loop: it either yields a header
		// error or drains to EOF with corruption accounted in Stats.
		r, err := NewBinaryReaderOpts(bytes.NewReader(data), ReaderOptions{Lenient: true})
		if err != nil {
			return
		}
		var ev Event
		for {
			ok, err := r.Next(&ev)
			if err != nil || !ok {
				break
			}
		}
		_ = r.Stats()
	})
}

// FuzzReadText fuzzes the line-oriented text decoder the same way.
func FuzzReadText(f *testing.F) {
	for _, tr := range fuzzSeedTraces() {
		var buf bytes.Buffer
		if err := WriteText(&buf, tr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.String())
	}
	f.Add("routine 0 main\nt1@1 c1 call r0\nt1@2 c2 read 100+4\nt1@3 c3 return\n")
	f.Add("# comment\n\nt0@1 c1 write 5+1\n")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := ReadText(bytes.NewReader([]byte(src)))
		if err != nil {
			return
		}
		_ = tr.Validate()
		_ = WriteText(&bytes.Buffer{}, tr)
	})
}
