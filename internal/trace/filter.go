package trace

// Trace slicing utilities: extract sub-traces for focused analysis (profile
// one thread, one routine's activations, or one region of the execution).
// All slices renumber times and re-insert switchThread events so the result
// is a well-formed merged trace again.

// rebuildMerged renumbers times and re-inserts switch events over a filtered
// event sequence (switch events in the input are ignored).
func rebuildMerged(syms *SymbolTable, events []Event) *Trace {
	out := &Trace{Symbols: syms, Events: make([]Event, 0, len(events)+len(events)/4)}
	var (
		time    uint64
		last    ThreadID
		started bool
	)
	for _, ev := range events {
		if ev.Kind == KindSwitchThread {
			continue
		}
		if started && ev.Thread != last {
			time++
			out.Events = append(out.Events, Event{
				Kind:   KindSwitchThread,
				Thread: ev.Thread,
				Time:   time,
			})
		}
		started = true
		last = ev.Thread
		time++
		ev.Time = time
		out.Events = append(out.Events, ev)
	}
	return out
}

// FilterThreads keeps only the events of the given threads. Call stacks of
// the kept threads are untouched, so the result profiles exactly like those
// threads did in the full run (cross-thread writes from dropped threads are
// gone, which is the point: the slice shows the thread in isolation).
func FilterThreads(tr *Trace, keep ...ThreadID) *Trace {
	keepSet := make(map[ThreadID]bool, len(keep))
	for _, id := range keep {
		keepSet[id] = true
	}
	var events []Event
	for _, ev := range tr.Events {
		if ev.Kind != KindSwitchThread && keepSet[ev.Thread] {
			events = append(events, ev)
		}
	}
	return rebuildMerged(tr.Symbols, events)
}

// TimeWindow keeps the events with Time in [from, to], balancing each
// thread's call stack: calls pending at the window edges are closed with
// synthetic returns (at the thread's last in-window cost), and returns whose
// calls precede the window are dropped. The result profiles the execution
// region in isolation.
func TimeWindow(tr *Trace, from, to uint64) *Trace {
	depth := make(map[ThreadID]int)
	cost := make(map[ThreadID]uint64)
	var order []ThreadID
	var events []Event
	for _, ev := range tr.Events {
		if ev.Time < from || ev.Time > to || ev.Kind == KindSwitchThread {
			continue
		}
		if _, seen := depth[ev.Thread]; !seen {
			depth[ev.Thread] = 0
			order = append(order, ev.Thread)
		}
		switch ev.Kind {
		case KindCall:
			depth[ev.Thread]++
		case KindReturn:
			if depth[ev.Thread] == 0 {
				// The matching call precedes the window; drop the return.
				cost[ev.Thread] = ev.Cost
				continue
			}
			depth[ev.Thread]--
		}
		cost[ev.Thread] = ev.Cost
		events = append(events, ev)
	}
	// Close activations left pending at the window's right edge.
	for _, id := range order {
		for depth[id] > 0 {
			events = append(events, Event{
				Kind:   KindReturn,
				Thread: id,
				Cost:   cost[id],
			})
			depth[id]--
		}
	}
	return rebuildMerged(tr.Symbols, events)
}

// FilterRoutine keeps, for each thread, only the events inside activations
// of the named routine (including nested callees). Everything outside those
// activations — other routines, top-level accesses — is dropped.
func FilterRoutine(tr *Trace, syms *SymbolTable, routine string) *Trace {
	id, ok := syms.Lookup(routine)
	if !ok {
		return &Trace{Symbols: syms}
	}
	// inside[t] counts how deeply thread t currently sits inside target
	// activations (0 = outside).
	inside := make(map[ThreadID]int)
	var events []Event
	for _, ev := range tr.Events {
		if ev.Kind == KindSwitchThread {
			continue
		}
		switch ev.Kind {
		case KindCall:
			if inside[ev.Thread] > 0 || ev.Routine == id {
				inside[ev.Thread]++
				events = append(events, ev)
			}
		case KindReturn:
			if inside[ev.Thread] > 0 {
				inside[ev.Thread]--
				events = append(events, ev)
			}
		default:
			if inside[ev.Thread] > 0 {
				events = append(events, ev)
			}
		}
	}
	out := rebuildMerged(tr.Symbols, events)
	out.CloseDangling()
	return out
}
