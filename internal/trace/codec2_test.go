package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// frameInfo locates one frame inside an encoded APT2 stream, for targeted
// corruption in tests.
type frameInfo struct {
	kind       byte
	off        int64 // offset of the marker
	payloadOff int64
	payloadLen int
}

// parseFrames walks the frame structure of an intact APT2 stream.
func parseFrames(t *testing.T, data []byte) []frameInfo {
	t.Helper()
	if string(data[:4]) != binaryMagicV2 {
		t.Fatalf("not an APT2 stream")
	}
	var out []frameInfo
	off := int64(4)
	for int(off) < len(data) {
		if !bytes.Equal(data[off:off+4], frameMarker[:]) {
			t.Fatalf("no frame marker at offset %d", off)
		}
		kind := data[off+4]
		length := binary.LittleEndian.Uint32(data[off+5 : off+9])
		out = append(out, frameInfo{
			kind:       kind,
			off:        off,
			payloadOff: off + 13,
			payloadLen: int(length),
		})
		off += 13 + int64(length)
	}
	return out
}

func eventFrames(frames []frameInfo) []frameInfo {
	var out []frameInfo
	for _, f := range frames {
		if f.kind == frameEvents {
			out = append(out, f)
		}
	}
	return out
}

func encodeV2(t *testing.T, tr *Trace, perFrame int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary2Opts(&buf, tr, V2Options{EventsPerFrame: perFrame}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinary2RoundTrip checks that ReadBinary transparently decodes APT2 at
// several framing granularities, including frames smaller than the trace
// and a frame size larger than the whole trace.
func TestBinary2RoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		tr := Random(RandomConfig{Seed: seed, Ops: 400})
		for _, per := range []int{1, 7, 64, 100000} {
			got, err := ReadBinary(bytes.NewReader(encodeV2(t, tr, per)))
			if err != nil {
				t.Fatalf("seed %d per %d: %v", seed, per, err)
			}
			if !tracesEqual(tr, got) {
				t.Errorf("seed %d per %d: round trip mismatch", seed, per)
			}
		}
	}
}

// TestBinary2EmptyTrace checks the degenerate header+end stream.
func TestBinary2EmptyTrace(t *testing.T) {
	tr := NewTrace()
	tr.Symbols.Intern("lonely")
	got, err := ReadBinary(bytes.NewReader(encodeV2(t, tr, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Symbols.Len() != 1 {
		t.Errorf("got %d events, %d symbols", got.Len(), got.Symbols.Len())
	}
}

// readLenient drains an APT2 stream in lenient mode, returning the events
// delivered and the final corruption stats.
func readLenient(t *testing.T, data []byte) ([]Event, CorruptionStats, *SymbolTable) {
	t.Helper()
	r, err := NewBinaryReaderOpts(bytes.NewReader(data), ReaderOptions{Lenient: true})
	if err != nil {
		t.Fatalf("lenient header: %v", err)
	}
	var out []Event
	var ev Event
	for {
		ok, err := r.Next(&ev)
		if err != nil {
			t.Fatalf("lenient Next: %v", err)
		}
		if !ok {
			return out, r.Stats(), r.Symbols()
		}
		out = append(out, ev)
	}
}

// TestBinary2LenientBitFlip corrupts k distinct event frames with single
// bit flips; the lenient reader must recover every other frame and report
// exactly k frames dropped, with the event loss equal to the sum of the
// corrupted frames' event counts.
func TestBinary2LenientBitFlip(t *testing.T) {
	tr := Random(RandomConfig{Seed: 4, Ops: 600})
	const per = 32
	data := encodeV2(t, tr, per)
	evFrames := eventFrames(parseFrames(t, data))
	if len(evFrames) < 6 {
		t.Fatalf("want >= 6 event frames, got %d", len(evFrames))
	}
	corruptIdx := []int{1, 3, 5}
	mut := append([]byte(nil), data...)
	wantLost := 0
	for _, fi := range corruptIdx {
		f := evFrames[fi]
		// Flip a bit in the middle of the payload.
		mut[f.payloadOff+int64(f.payloadLen/2)] ^= 0x10
		wantLost += frameEventCount(t, data, f)
	}
	events, stats, _ := readLenient(t, mut)
	if stats.FramesDropped != len(corruptIdx) {
		t.Errorf("FramesDropped = %d, want %d", stats.FramesDropped, len(corruptIdx))
	}
	if stats.EventsDropped != wantLost {
		t.Errorf("EventsDropped = %d, want %d", stats.EventsDropped, wantLost)
	}
	if len(events)+stats.EventsDropped != tr.Len() {
		t.Errorf("delivered %d + dropped %d != total %d", len(events), stats.EventsDropped, tr.Len())
	}
	if len(stats.Errors) == 0 {
		t.Error("no CorruptionError recorded")
	}
	// Every surviving event must match the original at its index.
	checkSurvivors(t, tr, events)
}

// frameEventCount parses an intact events frame's declared count.
func frameEventCount(t *testing.T, data []byte, f frameInfo) int {
	t.Helper()
	cur := bytes.NewReader(data[f.payloadOff : f.payloadOff+int64(f.payloadLen)])
	for i := 0; i < 2; i++ { // seq, firstIndex
		if _, err := binary.ReadUvarint(cur); err != nil {
			t.Fatal(err)
		}
	}
	count, err := binary.ReadUvarint(cur)
	if err != nil {
		t.Fatal(err)
	}
	return int(count)
}

// checkSurvivors verifies delivered events appear in the original trace in
// order (the lenient reader drops whole frames, never reorders).
func checkSurvivors(t *testing.T, tr *Trace, events []Event) {
	t.Helper()
	j := 0
	for i := range events {
		for j < len(tr.Events) && tr.Events[j] != events[i] {
			j++
		}
		if j == len(tr.Events) {
			t.Fatalf("delivered event %d (%s) not found in original order", i, events[i])
		}
		j++
	}
}

// TestBinary2LenientMarkerDamage destroys a frame's marker itself; the
// sequence-number gap must still count the lost frame exactly.
func TestBinary2LenientMarkerDamage(t *testing.T) {
	tr := Random(RandomConfig{Seed: 5, Ops: 400})
	data := encodeV2(t, tr, 32)
	evFrames := eventFrames(parseFrames(t, data))
	f := evFrames[2]
	mut := append([]byte(nil), data...)
	mut[f.off] ^= 0xFF // marker byte
	events, stats, _ := readLenient(t, mut)
	if stats.FramesDropped != 1 {
		t.Errorf("FramesDropped = %d, want 1", stats.FramesDropped)
	}
	want := frameEventCount(t, data, f)
	if stats.EventsDropped != want {
		t.Errorf("EventsDropped = %d, want %d", stats.EventsDropped, want)
	}
	if len(events)+stats.EventsDropped != tr.Len() {
		t.Errorf("delivered %d + dropped %d != total %d", len(events), stats.EventsDropped, tr.Len())
	}
	if stats.BytesSkipped == 0 {
		t.Error("expected skipped bytes from the resync scan")
	}
}

// TestBinary2LenientTruncation cuts the stream inside the last events
// frame: the partial frame is dropped, the tail loss is computed from the
// declared total, and Truncated is reported.
func TestBinary2LenientTruncation(t *testing.T) {
	tr := Random(RandomConfig{Seed: 6, Ops: 400})
	data := encodeV2(t, tr, 32)
	evFrames := eventFrames(parseFrames(t, data))
	last := evFrames[len(evFrames)-1]
	cut := last.payloadOff + int64(last.payloadLen/2)
	events, stats, _ := readLenient(t, data[:cut])
	if !stats.Truncated {
		t.Error("Truncated not reported")
	}
	if stats.FramesDropped != 1 {
		t.Errorf("FramesDropped = %d, want 1", stats.FramesDropped)
	}
	want := frameEventCount(t, data, last)
	if stats.EventsDropped != want {
		t.Errorf("EventsDropped = %d, want %d", stats.EventsDropped, want)
	}
	if len(events)+stats.EventsDropped != tr.Len() {
		t.Errorf("delivered %d + dropped %d != total %d", len(events), stats.EventsDropped, tr.Len())
	}
}

// TestBinary2StrictCorruption checks that without Lenient the same damage
// is a terminal *CorruptionError.
func TestBinary2StrictCorruption(t *testing.T) {
	tr := Random(RandomConfig{Seed: 7, Ops: 200})
	data := encodeV2(t, tr, 32)
	f := eventFrames(parseFrames(t, data))[1]
	mut := append([]byte(nil), data...)
	mut[f.payloadOff] ^= 0x01
	r, err := NewBinaryReader(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	var ev Event
	for {
		ok, err := r.Next(&ev)
		if err != nil {
			var cerr *CorruptionError
			if !errors.As(err, &cerr) {
				t.Fatalf("error %v is not a *CorruptionError", err)
			}
			return
		}
		if !ok {
			t.Fatal("corrupt stream decoded without error in strict mode")
		}
	}
}

// TestBinary2Skip checks Skip positioning, including across a corrupt
// region in lenient mode.
func TestBinary2Skip(t *testing.T) {
	tr := Random(RandomConfig{Seed: 8, Ops: 300})
	data := encodeV2(t, tr, 16)
	r, err := NewBinaryReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Skip(10); err != nil {
		t.Fatal(err)
	}
	var ev Event
	ok, err := r.Next(&ev)
	if err != nil || !ok {
		t.Fatalf("Next after Skip: ok=%v err=%v", ok, err)
	}
	if ev != tr.Events[10] {
		t.Errorf("after Skip(10), got %s want %s", ev, tr.Events[10])
	}
	if err := r.Skip(uint64(tr.Len())); err == nil {
		t.Error("Skip past the end succeeded")
	}
}

// TestBinaryReaderUnexpectedEOF checks the truncation-error contract of the
// APT1 reader: a mid-event cut surfaces io.ErrUnexpectedEOF with the event
// index in the message.
func TestBinaryReaderUnexpectedEOF(t *testing.T) {
	tr := Random(RandomConfig{Seed: 9, Ops: 100})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	// Cut a few bytes before the end: mid-event with events remaining.
	r, err := NewBinaryReader(bytes.NewReader(enc[:len(enc)-3]))
	if err != nil {
		t.Fatal(err)
	}
	var ev Event
	var lastErr error
	delivered := 0
	for {
		ok, err := r.Next(&ev)
		if err != nil {
			lastErr = err
			break
		}
		if !ok {
			t.Fatal("truncated APT1 stream ended cleanly")
		}
		delivered++
	}
	if !errors.Is(lastErr, io.ErrUnexpectedEOF) {
		t.Errorf("truncation error %v does not wrap io.ErrUnexpectedEOF", lastErr)
	}
	if want := []byte("event"); !bytes.Contains([]byte(lastErr.Error()), want) {
		t.Errorf("error %q lacks event index context", lastErr)
	}
}

// TestRegenerateV2Corpus rewrites the checked-in APT2 fuzz seed corpora
// (valid, corrupt-CRC, truncated-frame). Run with APROF_REGEN_CORPUS=1
// after changing the frame layout.
func TestRegenerateV2Corpus(t *testing.T) {
	if os.Getenv("APROF_REGEN_CORPUS") == "" {
		t.Skip("set APROF_REGEN_CORPUS=1 to regenerate")
	}
	tr := Random(RandomConfig{Seed: 11, Ops: 40})
	valid := encodeV2(t, tr, 8)
	corrupt := append([]byte(nil), valid...)
	f := eventFrames(parseFrames(t, valid))[0]
	corrupt[f.payloadOff] ^= 0x20
	truncated := valid[:f.payloadOff+int64(f.payloadLen/2)]
	dir := filepath.Join("testdata", "fuzz", "FuzzReadTrace")
	for name, data := range map[string][]byte{
		"seed_v2_valid":       valid,
		"seed_v2_corrupt_crc": corrupt,
		"seed_v2_truncated":   truncated,
	} {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBinary1LenientTruncation checks the APT1 degradation contract: no
// resync is possible, so a lenient reader keeps the decoded prefix and
// reports the remainder as truncated.
func TestBinary1LenientTruncation(t *testing.T) {
	tr := Random(RandomConfig{Seed: 10, Ops: 200})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	r, err := NewBinaryReaderOpts(bytes.NewReader(enc[:len(enc)*3/4]), ReaderOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	var ev Event
	delivered := 0
	for {
		ok, err := r.Next(&ev)
		if err != nil {
			t.Fatalf("lenient APT1 Next: %v", err)
		}
		if !ok {
			break
		}
		delivered++
	}
	stats := r.Stats()
	if !stats.Truncated {
		t.Error("Truncated not reported")
	}
	if delivered+stats.EventsDropped != tr.Len() {
		t.Errorf("delivered %d + dropped %d != total %d", delivered, stats.EventsDropped, tr.Len())
	}
}
