package trace

import (
	"fmt"
	"math/rand"
)

// RandomConfig sizes Random traces. The zero value of any field selects a
// sensible default, so tests can write RandomConfig{Seed: n, Ops: m}.
type RandomConfig struct {
	// Seed seeds the generator; equal configs produce identical traces.
	Seed int64
	// Threads is the number of application threads (default 3).
	Threads int
	// Routines is the size of the routine name pool (default 6).
	Routines int
	// Ops is the total number of operations issued across all threads
	// (default 512). The trace length exceeds Ops slightly: the builder
	// inserts switchThread events and closes dangling activations.
	Ops int
	// Cells is the shared address-space size; small values maximize
	// cross-thread collisions and with them induced first-reads
	// (default 24).
	Cells int
	// MaxDepth bounds each thread's call-stack depth (default 6).
	MaxDepth int
}

func (cfg *RandomConfig) defaults() {
	if cfg.Threads <= 0 {
		cfg.Threads = 3
	}
	if cfg.Routines <= 0 {
		cfg.Routines = 6
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 512
	}
	if cfg.Cells <= 0 {
		cfg.Cells = 24
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 6
	}
}

// Random generates a pseudo-random valid multi-thread trace: interleaved
// threads issuing nested calls, reads and writes over a small shared
// address space (provoking induced first-reads from peer threads), kernel
// I/O in both directions (provoking external input), synchronization
// events, and bursts of plain work. It is the adversarial input of the
// randomized property and differential tests; the builder guarantees
// structural validity (balanced activations, monotonic time, non-decreasing
// per-thread cost).
func Random(cfg RandomConfig) *Trace {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := NewBuilder()
	threads := make([]*ThreadBuilder, cfg.Threads)
	for i := range threads {
		threads[i] = b.Thread(ThreadID(i + 1))
	}
	names := make([]string, cfg.Routines)
	for i := range names {
		names[i] = fmt.Sprintf("routine_%02d", i)
	}
	for op := 0; op < cfg.Ops; op++ {
		t := threads[rng.Intn(len(threads))]
		addr := Addr(1 + rng.Intn(cfg.Cells))
		size := uint32(1 + rng.Intn(4))
		switch k := rng.Intn(100); {
		case k < 18: // call (or return when at max depth)
			if t.Depth() < cfg.MaxDepth {
				t.Call(names[rng.Intn(len(names))])
			} else {
				t.Ret()
			}
		case k < 28: // return (dangling activations are closed by Trace())
			if t.Depth() > 0 {
				t.Ret()
			}
		case k < 55:
			t.Read(addr, size)
		case k < 75:
			t.Write(addr, size)
		case k < 82: // kernel fills a buffer: external input
			t.SysRead(addr, size)
		case k < 88: // kernel drains a buffer: implicit reads by the thread
			t.SysWrite(addr, size)
		case k < 94:
			t.Work(uint64(rng.Intn(32)))
		case k < 97:
			t.Acquire(addr)
		default:
			t.Release(addr)
		}
	}
	return b.Trace()
}
