package trace

import (
	"bytes"
	"testing"
)

// TestRandomTracesValid checks that every generated trace passes the
// structural validation the profiler relies on, across a spread of sizes
// and seeds.
func TestRandomTracesValid(t *testing.T) {
	cases := []RandomConfig{
		{},
		{Seed: 1, Ops: 10},
		{Seed: 2, Threads: 1, Ops: 100},
		{Seed: 3, Threads: 8, Ops: 2000, Cells: 4},
		{Seed: 4, Routines: 1, MaxDepth: 1, Ops: 300},
		{Seed: 5, Threads: 2, Ops: 1500, Cells: 2, MaxDepth: 12},
	}
	for _, cfg := range cases {
		tr := Random(cfg)
		if err := tr.Validate(); err != nil {
			t.Errorf("Random(%+v): invalid trace: %v", cfg, err)
		}
		if tr.Len() == 0 {
			t.Errorf("Random(%+v): empty trace", cfg)
		}
	}
}

// TestRandomDeterministic checks that equal configs produce identical
// traces — the property every seeded regression test depends on.
func TestRandomDeterministic(t *testing.T) {
	cfg := RandomConfig{Seed: 42, Threads: 4, Ops: 800}
	var a, b bytes.Buffer
	if err := WriteBinary(&a, Random(cfg)); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&b, Random(cfg)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same config produced different traces")
	}
	b.Reset()
	if err := WriteBinary(&b, Random(RandomConfig{Seed: 43, Threads: 4, Ops: 800})); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("different seeds produced identical traces")
	}
}
