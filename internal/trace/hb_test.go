package trace

import (
	"math/rand"
	"testing"
)

// buildSyncedHandoff builds a producer-consumer trace where every handoff is
// protected by a semaphore pair.
func buildSyncedHandoff(n int) *Trace {
	b := NewBuilder()
	prod := b.Thread(1)
	cons := b.Thread(2)
	prod.Call("producer")
	cons.Call("consumer")
	const full, empty = Addr(1), Addr(2)
	for i := 0; i < n; i++ {
		if i > 0 {
			prod.Acquire(empty)
		}
		prod.Write1(100)
		prod.Release(full)
		cons.Acquire(full)
		cons.Read1(100)
		cons.Release(empty)
	}
	prod.Ret()
	cons.Ret()
	return b.Trace()
}

func TestReinterleaveSyncPreservesStreams(t *testing.T) {
	tr := buildSyncedHandoff(40)
	for seed := int64(0); seed < 6; seed++ {
		out := ReinterleaveSync(tr, seed, 8)
		if err := out.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		origParts := Split(tr)
		outParts := Split(out)
		if len(origParts) != len(outParts) {
			t.Fatalf("seed %d: thread count changed", seed)
		}
		for i := range origParts {
			if len(origParts[i].Events) != len(outParts[i].Events) {
				t.Fatalf("seed %d: thread %d stream length changed", seed, origParts[i].Thread)
			}
			for j := range origParts[i].Events {
				a, b := origParts[i].Events[j], outParts[i].Events[j]
				if a.Kind != b.Kind || a.Addr != b.Addr || a.Size != b.Size {
					t.Fatalf("seed %d: thread %d event %d changed", seed, origParts[i].Thread, j)
				}
			}
		}
	}
}

// TestReinterleaveSyncRespectsHandoffs checks the key property: in a fully
// synchronized producer-consumer, every consumer read still follows its
// producer write, for every seed — so the drms ordering-sensitive structure
// is preserved.
func TestReinterleaveSyncRespectsHandoffs(t *testing.T) {
	tr := buildSyncedHandoff(60)
	for seed := int64(0); seed < 10; seed++ {
		out := ReinterleaveSync(tr, seed, 6)
		writes, reads := 0, 0
		for _, ev := range out.Events {
			switch {
			case ev.Kind == KindWrite && ev.Thread == 1:
				writes++
			case ev.Kind == KindRead && ev.Thread == 2:
				reads++
				if reads > writes {
					t.Fatalf("seed %d: consumer read #%d scheduled before producer write #%d", seed, reads, writes)
				}
			}
		}
	}
}

// TestReinterleaveSyncUnsyncedVaries checks that racy (synchronization-free)
// cross-thread accesses DO reorder across seeds.
func TestReinterleaveSyncUnsyncedVaries(t *testing.T) {
	b := NewBuilder()
	t1 := b.Thread(1)
	t2 := b.Thread(2)
	t1.Call("a")
	t2.Call("b")
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 60; i++ {
		t1.Write1(Addr(rng.Intn(8)))
		t2.Read1(Addr(rng.Intn(8)))
	}
	t1.Ret()
	t2.Ret()
	tr := b.Trace()

	fingerprint := func(tr *Trace) string {
		out := make([]byte, 0, len(tr.Events))
		for _, ev := range tr.Events {
			if ev.Kind != KindSwitchThread {
				out = append(out, byte('0'+ev.Thread))
			}
		}
		return string(out)
	}
	a := fingerprint(ReinterleaveSync(tr, 1, 6))
	c := fingerprint(ReinterleaveSync(tr, 2, 6))
	if a == c {
		t.Error("different seeds produced the identical interleaving")
	}
	if a != fingerprint(ReinterleaveSync(tr, 1, 6)) {
		t.Error("same seed not deterministic")
	}
}

// TestReinterleaveSyncAllEventsSurvive checks no event is lost or
// duplicated.
func TestReinterleaveSyncAllEventsSurvive(t *testing.T) {
	tr := buildSyncedHandoff(25)
	orig := 0
	for _, ev := range tr.Events {
		if ev.Kind != KindSwitchThread {
			orig++
		}
	}
	for seed := int64(0); seed < 4; seed++ {
		out := ReinterleaveSync(tr, seed, 4)
		got := 0
		for _, ev := range out.Events {
			if ev.Kind != KindSwitchThread {
				got++
			}
		}
		if got != orig {
			t.Fatalf("seed %d: %d events, want %d", seed, got, orig)
		}
	}
}
