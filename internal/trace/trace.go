package trace

import (
	"errors"
	"fmt"
)

// Trace is a totally ordered execution trace together with the symbol table
// resolving its routine ids. A Trace is what the profiler and the comparator
// tools consume.
type Trace struct {
	// Symbols resolves RoutineIDs appearing in Events.
	Symbols *SymbolTable
	// Events in execution order. Time is non-decreasing.
	Events []Event
}

// NewTrace returns an empty trace with a fresh symbol table.
func NewTrace() *Trace {
	return &Trace{Symbols: NewSymbolTable()}
}

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.Events) }

// Threads returns the distinct thread ids appearing in the trace, in order
// of first appearance.
func (t *Trace) Threads() []ThreadID {
	seen := make(map[ThreadID]bool)
	var out []ThreadID
	for i := range t.Events {
		id := t.Events[i].Thread
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// MemoryFootprint returns the number of distinct cells touched by memory
// events. It approximates the "native" memory use of the traced program and
// anchors the space-overhead ratios of the comparator harness.
func (t *Trace) MemoryFootprint() int {
	cells := make(map[Addr]struct{})
	for i := range t.Events {
		t.Events[i].Cells(func(a Addr) { cells[a] = struct{}{} })
	}
	return len(cells)
}

// Validate checks the structural well-formedness the profiler relies on:
// known event kinds, registered routine ids on calls, per-thread
// non-decreasing cost, balanced returns, and non-decreasing Time.
func (t *Trace) Validate() error {
	if t.Symbols == nil {
		return errors.New("trace: nil symbol table")
	}
	depth := make(map[ThreadID]int)
	cost := make(map[ThreadID]uint64)
	var lastTime uint64
	for i := range t.Events {
		ev := &t.Events[i]
		if !ev.Kind.Valid() {
			return fmt.Errorf("trace: event %d: invalid kind %d", i, uint8(ev.Kind))
		}
		if ev.Time < lastTime {
			return fmt.Errorf("trace: event %d: time %d decreases below %d", i, ev.Time, lastTime)
		}
		lastTime = ev.Time
		if ev.Kind != KindSwitchThread {
			if c, ok := cost[ev.Thread]; ok && ev.Cost < c {
				return fmt.Errorf("trace: event %d: thread %d cost %d decreases below %d", i, ev.Thread, ev.Cost, c)
			}
			cost[ev.Thread] = ev.Cost
		}
		switch ev.Kind {
		case KindCall:
			if int(ev.Routine) >= t.Symbols.Len() {
				return fmt.Errorf("trace: event %d: unregistered routine id %d", i, ev.Routine)
			}
			depth[ev.Thread]++
		case KindReturn:
			if depth[ev.Thread] == 0 {
				return fmt.Errorf("trace: event %d: return on thread %d with empty call stack", i, ev.Thread)
			}
			depth[ev.Thread]--
		case KindRead, KindWrite, KindUserToKernel, KindKernelToUser:
			if ev.Size == 0 {
				return fmt.Errorf("trace: event %d: %s of zero cells", i, ev.Kind)
			}
		}
	}
	return nil
}

// CloseDangling appends return events for every activation still pending at
// the end of the trace, using each thread's final cost. Workload generators
// use it so every activation is collected.
func (t *Trace) CloseDangling() {
	depth := make(map[ThreadID]int)
	cost := make(map[ThreadID]uint64)
	order := []ThreadID{}
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Kind == KindSwitchThread {
			continue
		}
		if _, ok := depth[ev.Thread]; !ok {
			order = append(order, ev.Thread)
		}
		switch ev.Kind {
		case KindCall:
			depth[ev.Thread]++
		case KindReturn:
			depth[ev.Thread]--
		}
		cost[ev.Thread] = ev.Cost
	}
	time := uint64(0)
	if n := len(t.Events); n > 0 {
		time = t.Events[n-1].Time
	}
	for _, id := range order {
		for depth[id] > 0 {
			time++
			t.Events = append(t.Events, Event{
				Kind:   KindReturn,
				Thread: id,
				Time:   time,
				Cost:   cost[id],
			})
			depth[id]--
		}
	}
}

// ThreadTrace is the event stream of a single thread, before merging.
type ThreadTrace struct {
	Thread ThreadID
	Events []Event
}
