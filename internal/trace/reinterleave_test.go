package trace

import (
	"math/rand"
	"testing"
)

func buildMultiThreadTrace(threads, opsPerThread int, rng *rand.Rand) *Trace {
	b := NewBuilder()
	tbs := make([]*ThreadBuilder, threads)
	for i := range tbs {
		tbs[i] = b.Thread(ThreadID(i + 1))
		tbs[i].Call("main")
	}
	for op := 0; op < opsPerThread; op++ {
		for _, tb := range tbs {
			switch rng.Intn(3) {
			case 0:
				tb.Read1(Addr(rng.Intn(64)))
			case 1:
				tb.Write1(Addr(rng.Intn(64)))
			default:
				tb.SysRead(Addr(rng.Intn(64)), 2)
			}
		}
	}
	for _, tb := range tbs {
		tb.Ret()
	}
	return b.Trace()
}

func TestReinterleavePreservesPerThreadStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := buildMultiThreadTrace(3, 50, rng)
	for seed := int64(0); seed < 5; seed++ {
		out := Reinterleave(tr, seed)
		if err := out.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		origParts := Split(tr)
		outParts := Split(out)
		if len(origParts) != len(outParts) {
			t.Fatalf("seed %d: thread count changed", seed)
		}
		for i := range origParts {
			if len(origParts[i].Events) != len(outParts[i].Events) {
				t.Fatalf("seed %d thread %d: event count changed", seed, origParts[i].Thread)
			}
			for j := range origParts[i].Events {
				a, b := origParts[i].Events[j], outParts[i].Events[j]
				if a.Kind != b.Kind || a.Addr != b.Addr || a.Size != b.Size || a.Routine != b.Routine || a.Cost != b.Cost {
					t.Fatalf("seed %d thread %d event %d: %v != %v", seed, origParts[i].Thread, j, a, b)
				}
			}
		}
	}
}

func TestReinterleaveVariesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := buildMultiThreadTrace(3, 80, rng)
	fingerprint := func(tr *Trace) string {
		out := make([]byte, 0, len(tr.Events))
		for _, ev := range tr.Events {
			if ev.Kind == KindSwitchThread {
				continue
			}
			out = append(out, byte('0'+ev.Thread))
		}
		return string(out)
	}
	a := fingerprint(Reinterleave(tr, 1))
	b := fingerprint(Reinterleave(tr, 2))
	if a == b {
		t.Error("different seeds produced the identical interleaving")
	}
	if a != fingerprint(Reinterleave(tr, 1)) {
		t.Error("same seed produced different interleavings")
	}
}

func TestReinterleaveSingleThreadIsIdentity(t *testing.T) {
	b := NewBuilder()
	tb := b.Thread(1)
	tb.Call("f")
	tb.Read1(1)
	tb.Write1(2)
	tb.Ret()
	tr := b.Trace()
	out := Reinterleave(tr, 99)
	if len(Split(out)[0].Events) != len(Split(tr)[0].Events) {
		t.Fatal("single-thread reinterleave altered the stream")
	}
}
