// Package asciiplot renders scatter plots as text, playing the role of
// aprof-plot for terminal use: the cost plots the profiler produces (input
// size on the x-axis, worst-case cost on the y-axis) become immediately
// readable next to the report, without leaving the terminal.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Point is one (x, y) sample.
type Point struct {
	X float64
	Y float64
}

// Options controls rendering.
type Options struct {
	// Width and Height are the plot area size in characters (default 60x20).
	Width  int
	Height int
	// Title is printed above the plot.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel string
	YLabel string
	// LogX and LogY put the corresponding axis on a log10 scale
	// (non-positive values are dropped).
	LogX bool
	LogY bool
	// Marks are the glyphs used for each series, in order; default "*+ox#".
	Marks string
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 60
	}
	if o.Width < 8 {
		o.Width = 8
	}
	if o.Height <= 0 {
		o.Height = 20
	}
	if o.Height < 4 {
		o.Height = 4
	}
	if o.Marks == "" {
		o.Marks = "*+ox#"
	}
	return o
}

// Series is a named point set.
type Series struct {
	Name   string
	Points []Point
}

// Render draws the series into a text grid with axes and a legend.
func Render(series []Series, opts Options) string {
	opts = opts.withDefaults()

	type xy struct{ x, y float64 }
	transformed := make([][]xy, len(series))
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	total := 0
	for i, s := range series {
		for _, p := range s.Points {
			x, y := p.X, p.Y
			if opts.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			if opts.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			transformed[i] = append(transformed[i], xy{x, y})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
			total++
		}
	}
	if total == 0 {
		return "(no points)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	for i, pts := range transformed {
		mark := opts.Marks[i%len(opts.Marks)]
		for _, p := range pts {
			col := int(math.Round((p.x - minX) / (maxX - minX) * float64(opts.Width-1)))
			row := int(math.Round((p.y - minY) / (maxY - minY) * float64(opts.Height-1)))
			row = opts.Height - 1 - row // y grows upward
			if row >= 0 && row < opts.Height && col >= 0 && col < opts.Width {
				grid[row][col] = mark
			}
		}
	}

	var sb strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&sb, "%s\n", opts.Title)
	}
	yHi, yLo := maxY, minY
	if opts.LogY {
		yHi, yLo = math.Pow(10, maxY), math.Pow(10, minY)
	}
	labelHi := formatTick(yHi)
	labelLo := formatTick(yLo)
	labelWidth := len(labelHi)
	if len(labelLo) > labelWidth {
		labelWidth = len(labelLo)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", labelWidth)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelWidth, labelHi)
		case opts.Height - 1:
			label = fmt.Sprintf("%*s", labelWidth, labelLo)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(row))
	}
	xHi, xLo := maxX, minX
	if opts.LogX {
		xHi, xLo = math.Pow(10, maxX), math.Pow(10, minX)
	}
	fmt.Fprintf(&sb, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", opts.Width))
	left := formatTick(xLo)
	right := formatTick(xHi)
	pad := opts.Width - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&sb, "%s  %s%s%s\n", strings.Repeat(" ", labelWidth), left, strings.Repeat(" ", pad), right)
	if opts.XLabel != "" || opts.YLabel != "" {
		fmt.Fprintf(&sb, "x: %s   y: %s\n", opts.XLabel, opts.YLabel)
	}
	if len(series) > 1 || (len(series) == 1 && series[0].Name != "") {
		sb.WriteString("legend:")
		for i, s := range series {
			fmt.Fprintf(&sb, "  %c %s", opts.Marks[i%len(opts.Marks)], s.Name)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// formatTick renders an axis extent compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6 || (av > 0 && av < 1e-3):
		return fmt.Sprintf("%.2e", v)
	case av == math.Trunc(av):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
