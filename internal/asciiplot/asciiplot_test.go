package asciiplot

import (
	"strings"
	"testing"
)

func linearSeries(n int) Series {
	s := Series{Name: "linear"}
	for i := 1; i <= n; i++ {
		s.Points = append(s.Points, Point{X: float64(i), Y: float64(3 * i)})
	}
	return s
}

func TestRenderBasics(t *testing.T) {
	out := Render([]Series{linearSeries(20)}, Options{
		Title:  "demo",
		XLabel: "n",
		YLabel: "cost",
		Width:  40,
		Height: 10,
	})
	for _, want := range []string{"demo", "x: n   y: cost", "legend:", "* linear", "+--"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	plotLines := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines++
		}
	}
	if plotLines != 10 {
		t.Errorf("got %d plot rows, want 10", plotLines)
	}
	if !strings.Contains(out, "60") || !strings.Contains(out, "3") {
		t.Errorf("axis extents missing:\n%s", out)
	}
}

func TestRenderMonotoneDiagonal(t *testing.T) {
	// For y = x the marks must descend left to right.
	out := Render([]Series{linearSeries(30)}, Options{Width: 30, Height: 10})
	var rows []string
	for _, l := range strings.Split(out, "\n") {
		if idx := strings.IndexByte(l, '|'); idx >= 0 {
			rows = append(rows, l[idx+1:])
		}
	}
	firstMark := make(map[int]int) // row -> first column with a mark
	for r, row := range rows {
		for c := 0; c < len(row); c++ {
			if row[c] == '*' {
				firstMark[r] = c
				break
			}
		}
	}
	prev := -1
	for r := len(rows) - 1; r >= 0; r-- {
		c, ok := firstMark[r]
		if !ok {
			continue
		}
		if c < prev {
			t.Fatalf("marks not monotone: row %d starts at col %d after col %d\n%s", r, c, prev, out)
		}
		prev = c
	}
}

func TestRenderMultipleSeries(t *testing.T) {
	a := linearSeries(10)
	b := Series{Name: "quadratic"}
	for i := 1; i <= 10; i++ {
		b.Points = append(b.Points, Point{X: float64(i), Y: float64(i * i)})
	}
	out := Render([]Series{a, b}, Options{Width: 30, Height: 8})
	if !strings.Contains(out, "* linear") || !strings.Contains(out, "+ quadratic") {
		t.Errorf("legend incomplete:\n%s", out)
	}
	if !strings.Contains(out, "+") {
		t.Errorf("second series mark missing:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := Render(nil, Options{}); !strings.Contains(out, "no points") {
		t.Errorf("empty render = %q", out)
	}
	if out := Render([]Series{{Name: "x"}}, Options{}); !strings.Contains(out, "no points") {
		t.Errorf("empty series render = %q", out)
	}
}

func TestRenderLogScales(t *testing.T) {
	s := Series{Name: "pow"}
	for i := 0; i <= 6; i++ {
		x := 1.0
		for j := 0; j < i; j++ {
			x *= 10
		}
		s.Points = append(s.Points, Point{X: x, Y: x * x})
	}
	// Include a non-positive point that must be dropped, not crash.
	s.Points = append(s.Points, Point{X: 0, Y: -1})
	out := Render([]Series{s}, Options{LogX: true, LogY: true, Width: 30, Height: 8})
	if strings.Contains(out, "no points") {
		t.Fatalf("log render dropped everything:\n%s", out)
	}
	// On log-log axes a power law is a straight line: every row with a mark
	// should have exactly one mark.
	for _, l := range strings.Split(out, "\n") {
		idx := strings.IndexByte(l, '|')
		if idx < 0 {
			continue
		}
		if n := strings.Count(l[idx:], "*"); n > 2 {
			t.Errorf("row has %d marks, expected a thin diagonal:\n%s", n, out)
		}
	}
}

func TestRenderDegenerateExtents(t *testing.T) {
	s := Series{Points: []Point{{5, 7}, {5, 7}}}
	out := Render([]Series{s}, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "*") {
		t.Errorf("single-point cloud not rendered:\n%s", out)
	}
}
