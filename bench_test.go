package aprof

// One benchmark per table and figure of the paper's evaluation: each bench
// regenerates its experiment end to end (workload generation + profiling +
// metric/figure computation) at quick scale, so `go test -bench=.` exercises
// every reproduction path and reports its cost. Micro-benchmarks at the
// bottom measure the profiler's per-event cost directly (the quantity behind
// Table 1).

import (
	"testing"

	"aprof/internal/core"
	"aprof/internal/experiments"
	"aprof/internal/tools"
	"aprof/internal/trace"
	"aprof/internal/workloads"
)

func benchDriver(b *testing.B, name string) {
	b.Helper()
	d, ok := experiments.DriverByName(name)
	if !ok {
		b.Fatalf("no driver %q", name)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := d.Run(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 && len(res.Figures) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig1Examples(b *testing.B)           { benchDriver(b, "fig1") }
func BenchmarkFig2ProducerConsumer(b *testing.B)   { benchDriver(b, "fig2") }
func BenchmarkFig3Streaming(b *testing.B)          { benchDriver(b, "fig3") }
func BenchmarkFig4MySQLSelect(b *testing.B)        { benchDriver(b, "fig4") }
func BenchmarkFig5VipsImGenerate(b *testing.B)     { benchDriver(b, "fig5") }
func BenchmarkFig6WbufferWriteThread(b *testing.B) { benchDriver(b, "fig6") }
func BenchmarkFig10SelectionSort(b *testing.B)     { benchDriver(b, "fig10") }
func BenchmarkFig11Richness(b *testing.B)          { benchDriver(b, "fig11") }
func BenchmarkFig12InputVolume(b *testing.B)       { benchDriver(b, "fig12") }
func BenchmarkFig13RoutineHistogram(b *testing.B)  { benchDriver(b, "fig13") }
func BenchmarkFig14InputCurves(b *testing.B)       { benchDriver(b, "fig14") }
func BenchmarkFig15Characterization(b *testing.B)  { benchDriver(b, "fig15") }
func BenchmarkFig16Scaling(b *testing.B)           { benchDriver(b, "fig16") }
func BenchmarkTable1Tools(b *testing.B)            { benchDriver(b, "table1") }

// benchTrace is a representative multithreaded trace with all three input
// kinds, reused by the per-event micro-benchmarks.
func benchTrace() *trace.Trace {
	bench := workloads.Benchmark{
		Name: "micro", Suite: "micro",
		Threads: 4, ComputeRoutines: 12, CommRoutines: 2, IORoutines: 2,
		CommVolume: 200, IOVolume: 200, Rounds: 40, Seed: 7,
	}
	return bench.Build()
}

// BenchmarkProfilerDRMS measures the full drms profiler on the shared
// micro-trace; the per-op figure is the cost of one trace event.
func BenchmarkProfilerDRMS(b *testing.B) {
	tr := benchTrace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(tr, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()), "events/op")
}

// BenchmarkProfilerRMS measures the rms-only configuration (plain aprof —
// no global shadow memory). The gap to BenchmarkProfilerDRMS is the paper's
// "~29% overhead for recognizing induced first-reads".
func BenchmarkProfilerRMS(b *testing.B) {
	tr := benchTrace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(tr, core.RMSOnlyConfig()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()), "events/op")
}

// BenchmarkProfilerNaive measures the set-based oracle, demonstrating why
// the timestamping algorithm exists.
func BenchmarkProfilerNaive(b *testing.B) {
	tr := benchTrace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunNaive(tr, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()), "events/op")
}

// BenchmarkProfilerDRMSRenumbering adds frequent counter renumbering.
func BenchmarkProfilerDRMSRenumbering(b *testing.B) {
	bench := workloads.Benchmark{
		Name: "micro-renumber", Suite: "micro",
		Threads: 4, ComputeRoutines: 12, CommRoutines: 2, IORoutines: 2,
		CommVolume: 200, IOVolume: 200, Rounds: 400, Seed: 7,
	}
	tr := bench.Build()
	cfg := core.DefaultConfig()
	cfg.CounterLimit = 1 << 11
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps, err := core.Run(tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if ps.Renumberings == 0 {
			b.Fatal("expected renumberings")
		}
	}
}

// BenchmarkComparatorTools measures each comparator tool on the shared
// micro-trace (the per-tool per-event analysis cost behind Table 1).
func BenchmarkComparatorTools(b *testing.B) {
	tr := benchTrace()
	for _, f := range tools.All() {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tool := f.New(tr.Symbols)
				if err := tools.Run(tool, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVMInterpreter measures MiniLang execution speed (instructions per
// second of the DBI substitute).
func BenchmarkVMInterpreter(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := workloads.SelectionSortVM([]int{64, 128})
		if err != nil {
			b.Fatal(err)
		}
		if tr.Len() == 0 {
			b.Fatal("empty trace")
		}
	}
}
