package aprof

// One benchmark per table and figure of the paper's evaluation: each bench
// regenerates its experiment end to end (workload generation + profiling +
// metric/figure computation) at quick scale, so `go test -bench=.` exercises
// every reproduction path and reports its cost. Micro-benchmarks at the
// bottom measure the profiler's per-event cost directly (the quantity behind
// Table 1).

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"aprof/internal/core"
	"aprof/internal/experiments"
	"aprof/internal/tools"
	"aprof/internal/trace"
	"aprof/internal/workloads"
)

func benchDriver(b *testing.B, name string) {
	b.Helper()
	d, ok := experiments.DriverByName(name)
	if !ok {
		b.Fatalf("no driver %q", name)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := d.Run(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 && len(res.Figures) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig1Examples(b *testing.B)           { benchDriver(b, "fig1") }
func BenchmarkFig2ProducerConsumer(b *testing.B)   { benchDriver(b, "fig2") }
func BenchmarkFig3Streaming(b *testing.B)          { benchDriver(b, "fig3") }
func BenchmarkFig4MySQLSelect(b *testing.B)        { benchDriver(b, "fig4") }
func BenchmarkFig5VipsImGenerate(b *testing.B)     { benchDriver(b, "fig5") }
func BenchmarkFig6WbufferWriteThread(b *testing.B) { benchDriver(b, "fig6") }
func BenchmarkFig10SelectionSort(b *testing.B)     { benchDriver(b, "fig10") }
func BenchmarkFig11Richness(b *testing.B)          { benchDriver(b, "fig11") }
func BenchmarkFig12InputVolume(b *testing.B)       { benchDriver(b, "fig12") }
func BenchmarkFig13RoutineHistogram(b *testing.B)  { benchDriver(b, "fig13") }
func BenchmarkFig14InputCurves(b *testing.B)       { benchDriver(b, "fig14") }
func BenchmarkFig15Characterization(b *testing.B)  { benchDriver(b, "fig15") }
func BenchmarkFig16Scaling(b *testing.B)           { benchDriver(b, "fig16") }
func BenchmarkTable1Tools(b *testing.B)            { benchDriver(b, "table1") }

// benchTrace is a representative multithreaded trace with all three input
// kinds, reused by the per-event micro-benchmarks.
func benchTrace() *trace.Trace {
	bench := workloads.Benchmark{
		Name: "micro", Suite: "micro",
		Threads: 4, ComputeRoutines: 12, CommRoutines: 2, IORoutines: 2,
		CommVolume: 200, IOVolume: 200, Rounds: 40, Seed: 7,
	}
	return bench.Build()
}

// BenchmarkProfilerDRMS measures the full drms profiler on the shared
// micro-trace; the per-op figure is the cost of one trace event.
func BenchmarkProfilerDRMS(b *testing.B) {
	tr := benchTrace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(tr, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()), "events/op")
}

// BenchmarkProfilerRMS measures the rms-only configuration (plain aprof —
// no global shadow memory). The gap to BenchmarkProfilerDRMS is the paper's
// "~29% overhead for recognizing induced first-reads".
func BenchmarkProfilerRMS(b *testing.B) {
	tr := benchTrace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(tr, core.RMSOnlyConfig()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()), "events/op")
}

// BenchmarkProfilerNaive measures the set-based oracle, demonstrating why
// the timestamping algorithm exists.
func BenchmarkProfilerNaive(b *testing.B) {
	tr := benchTrace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunNaive(tr, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()), "events/op")
}

// BenchmarkProfilerDRMSRenumbering adds frequent counter renumbering.
func BenchmarkProfilerDRMSRenumbering(b *testing.B) {
	bench := workloads.Benchmark{
		Name: "micro-renumber", Suite: "micro",
		Threads: 4, ComputeRoutines: 12, CommRoutines: 2, IORoutines: 2,
		CommVolume: 200, IOVolume: 200, Rounds: 400, Seed: 7,
	}
	tr := bench.Build()
	cfg := core.DefaultConfig()
	cfg.CounterLimit = 1 << 11
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps, err := core.Run(tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if ps.Renumberings == 0 {
			b.Fatal("expected renumberings")
		}
	}
}

// BenchmarkComparatorTools measures each comparator tool on the shared
// micro-trace (the per-tool per-event analysis cost behind Table 1).
func BenchmarkComparatorTools(b *testing.B) {
	tr := benchTrace()
	for _, f := range tools.All() {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tool := f.New(tr.Symbols)
				if err := tools.Run(tool, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVMInterpreter measures MiniLang execution speed (instructions per
// second of the DBI substitute).
func BenchmarkVMInterpreter(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := workloads.SelectionSortVM([]int{64, 128})
		if err != nil {
			b.Fatal(err)
		}
		if tr.Len() == 0 {
			b.Fatal("empty trace")
		}
	}
}

// --- Concurrent pipeline benchmarks (BENCH_pipeline.json) ---------------

// benchStreamBytes encodes the shared micro-trace once; the stream
// benchmarks replay it from memory so only decode+profile cost is measured.
func benchStreamBytes(b *testing.B) []byte {
	b.Helper()
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, benchTrace()); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkStreamSequential is the pre-pipeline baseline: decode the whole
// trace into memory, then profile it.
func BenchmarkStreamSequential(b *testing.B) {
	data := benchStreamBytes(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := trace.ReadBinary(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Run(tr, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamPipelined measures the staged pipeline: a decoder goroutine
// overlaps event parsing with the profiler consuming batches, holding only
// O(BatchSize·Depth) events in memory.
func BenchmarkStreamPipelined(b *testing.B) {
	data := benchStreamBytes(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ProfileTraceStream(bytes.NewReader(data), DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamSharded measures the sharded multi-core engine behind the
// same streaming entry point (-shards N on the CLI). Output is byte-
// identical to BenchmarkStreamPipelined's; on a multi-core host pass B of
// each window runs one goroutine per shard. On a single core the sharded
// runs measure pure coordination overhead instead of speedup.
func BenchmarkStreamSharded(b *testing.B) {
	data := benchStreamBytes(b)
	for _, shards := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				ps, err := ProfileTraceStreamContext(context.Background(), bytes.NewReader(data),
					DefaultConfig(), StreamOptions{Shards: shards})
				if err != nil {
					b.Fatal(err)
				}
				if ps.Events == 0 {
					b.Fatal("empty profile")
				}
			}
		})
	}
}

// benchMergeRuns profiles n independent random traces once, for the merge
// benchmarks.
func benchMergeRuns(b *testing.B, n int) []*Profiles {
	b.Helper()
	runs := make([]*Profiles, n)
	for i := range runs {
		tr := trace.Random(trace.RandomConfig{Seed: int64(i + 1), Ops: 2000})
		ps, err := core.Run(tr, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		runs[i] = ps
	}
	return runs
}

// BenchmarkMergeRunsFold is the sequential left-fold merge baseline.
func BenchmarkMergeRunsFold(b *testing.B) {
	runs := benchMergeRuns(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ps := MergeRuns(runs...); ps.Events == 0 {
			b.Fatal("empty merge")
		}
	}
}

// BenchmarkMergeRunsParallel is the pairwise tree reduction on the worker
// pool; byte-identical output to the fold (verified by pipeline_test.go).
func BenchmarkMergeRunsParallel(b *testing.B) {
	runs := benchMergeRuns(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ps := MergeRunsParallel(0, runs...); ps.Events == 0 {
			b.Fatal("empty merge")
		}
	}
}

// BenchmarkRunConcurrent profiles 8 independent random traces with varying
// pool widths; workers=1 is the sequential baseline, workers=0 uses
// GOMAXPROCS. The speedup column of BENCH_pipeline.json is the ratio of the
// two (on a multi-core host; on a single core they coincide).
func BenchmarkRunConcurrent(b *testing.B) {
	const jobsN = 8
	traces := make([]*Trace, jobsN)
	for i := range traces {
		traces[i] = trace.Random(trace.RandomConfig{Seed: int64(i + 1), Ops: 4000})
	}
	for _, workers := range []int{1, 0} {
		name := "workers=gomaxprocs"
		if workers == 1 {
			name = "workers=1"
		}
		b.Run(name, func(b *testing.B) {
			jobs := make([]Job, jobsN)
			for i, tr := range traces {
				jobs[i] = TraceJob(tr)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ps, err := RunConcurrent(context.Background(), jobs, DefaultConfig(), workers)
				if err != nil {
					b.Fatal(err)
				}
				if ps.Events == 0 {
					b.Fatal("empty profiles")
				}
			}
		})
	}
}
