// Package aprof is an input-sensitive profiler implementing the dynamic
// read memory size (drms) metric of "Estimating the Empirical Cost Function
// of Routines with Dynamic Workloads" (CGO 2014): for every routine
// activation it estimates the size of the input the activation actually
// operated on — including *dynamic* input produced by other threads through
// shared memory and by the OS kernel through system calls — and relates the
// activation's cost to that size, yielding per-routine empirical cost
// functions.
//
// The package profiles execution traces (see NewTraceBuilder for
// programmatic construction) and MiniLang programs executed by the
// repository's instrumented virtual machine (see ProfileProgram), which
// substitutes for the dynamic binary instrumentation the original system
// obtained from Valgrind.
//
// Basic use:
//
//	b := aprof.NewTraceBuilder()
//	t1 := b.Thread(1)
//	t1.Call("worker")
//	t1.Read(0x1000, 64)
//	t1.Ret()
//	profiles, err := aprof.ProfileTrace(b.Trace(), aprof.DefaultConfig())
//	fmt.Print(aprof.Report(profiles, aprof.ReportOptions{}))
package aprof

import (
	"context"
	"fmt"
	"io"

	"aprof/internal/asciiplot"
	"aprof/internal/core"
	"aprof/internal/fit"
	"aprof/internal/htmlreport"
	"aprof/internal/metrics"
	"aprof/internal/obs"
	"aprof/internal/profio"
	"aprof/internal/trace"
	"aprof/internal/vm"
)

// Re-exported trace construction and profiling types. The aliases make the
// root package a complete surface: callers need no internal imports.
type (
	// Trace is a totally ordered execution trace.
	Trace = trace.Trace
	// TraceBuilder constructs merged traces programmatically.
	TraceBuilder = trace.Builder
	// ThreadBuilder issues one thread's operations into a TraceBuilder.
	ThreadBuilder = trace.ThreadBuilder
	// Addr is a memory cell address.
	Addr = trace.Addr
	// ThreadID identifies an application thread.
	ThreadID = trace.ThreadID
	// Event is one trace operation.
	Event = trace.Event
	// Config controls which dynamic input sources the profiler recognizes.
	Config = core.Config
	// Profiles is the result of a profiling run.
	Profiles = core.Profiles
	// Profile aggregates the activations of one routine.
	Profile = core.Profile
	// PlotPoint is one (input size, cost) point of a cost plot.
	PlotPoint = core.PlotPoint
	// CostStats aggregates the costs observed at one input size.
	CostStats = core.CostStats
	// ActivationRecord reports one completed activation (streaming use).
	ActivationRecord = core.ActivationRecord
	// Metric selects between the rms and drms input-size estimates.
	Metric = core.Metric
	// FaultPolicy selects how the profiler reacts to semantically malformed
	// events (strict | skip | count).
	FaultPolicy = core.FaultPolicy
	// DropStats counts events shed by a non-strict FaultPolicy or by
	// Limits, per category.
	DropStats = core.DropStats
	// Limits bounds the profiler's resource usage, degrading to sampling
	// instead of failing when exceeded.
	Limits = core.Limits
	// CorruptionError describes one corrupt region of a binary trace
	// stream.
	CorruptionError = trace.CorruptionError
	// CorruptionStats aggregates what a lenient trace reader skipped.
	CorruptionStats = trace.CorruptionStats
	// VMOptions configures MiniLang execution.
	VMOptions = vm.Options
	// VMResult is the outcome of a MiniLang run.
	VMResult = vm.Result
)

// FaultPolicy values.
const (
	// FaultStrict aborts the run on the first malformed event (default).
	FaultStrict = core.FaultStrict
	// FaultSkip drops malformed events silently.
	FaultSkip = core.FaultSkip
	// FaultCount drops malformed events and counts them in Profiles.Drops.
	FaultCount = core.FaultCount
)

// ParseFaultPolicy parses a policy name (strict, skip, count), as accepted
// by the -fault-policy flag of cmd/aprof.
func ParseFaultPolicy(s string) (FaultPolicy, error) { return core.ParseFaultPolicy(s) }

// Metric values.
const (
	// RMS is the read memory size of aprof (PLDI 2012): distinct cells
	// first accessed by a read.
	RMS = core.MetricRMS
	// DRMS is the dynamic read memory size of the CGO 2014 paper: rms plus
	// induced first-reads from other threads and from the kernel.
	DRMS = core.MetricDRMS
)

// DefaultConfig enables both dynamic input sources (full drms).
func DefaultConfig() Config { return core.DefaultConfig() }

// RMSOnlyConfig disables both dynamic input sources, reproducing plain
// aprof.
func RMSOnlyConfig() Config { return core.RMSOnlyConfig() }

// ExternalOnlyConfig recognizes only kernel-induced input (the Fig. 6b
// variant of the paper).
func ExternalOnlyConfig() Config { return Config{ExternalInput: true} }

// ContextSensitiveConfig is DefaultConfig plus calling-context-sensitive
// collection: activations are additionally keyed by their calling context,
// so one routine's cost plots can be separated per caller path (see
// Profiles.HotContexts and Profiles.Context).
func ContextSensitiveConfig() Config {
	cfg := core.DefaultConfig()
	cfg.ContextSensitive = true
	return cfg
}

// ContextProfile pairs a calling-context path with its merged profile.
type ContextProfile = core.ContextProfile

// ContextID identifies a calling-context node.
type ContextID = core.ContextID

// NewTraceBuilder returns an empty trace builder.
func NewTraceBuilder() *TraceBuilder { return trace.NewBuilder() }

// ProfileTrace profiles a merged execution trace.
func ProfileTrace(tr *Trace, cfg Config) (*Profiles, error) {
	return core.Run(tr, cfg)
}

// ProfileTraceSharded profiles one merged trace across nShards cores: the
// trace's threads are partitioned over per-shard analysis workers whose
// cross-thread induced first-reads resolve against a merged write-history
// index. Output is byte-identical (under WriteProfiles) to ProfileTrace for
// every shard count — parallelism changes wall-clock only, never results.
// Shard counts below 2, and configurations the sharded engine does not
// support (counter renumbering, event/memory limits, OnActivation), run
// sequentially. For streaming input, set StreamOptions.Shards instead.
func ProfileTraceSharded(tr *Trace, cfg Config, nShards int) (*Profiles, error) {
	return core.ProfileSharded(tr, cfg, nShards)
}

// ProfileProgram compiles and executes a MiniLang program under the
// instrumented VM, then profiles the resulting trace. It returns both the
// profiles and the VM result (program output, executed basic blocks).
func ProfileProgram(src string, vmOpts VMOptions, cfg Config) (*Profiles, *VMResult, error) {
	res, err := vm.RunSource(src, vmOpts)
	if err != nil {
		return nil, nil, err
	}
	ps, err := core.Run(res.Trace, cfg)
	if err != nil {
		return nil, nil, err
	}
	return ps, res, nil
}

// RunProgram executes a MiniLang program under the instrumented VM without
// profiling (the trace is available in the result).
func RunProgram(src string, vmOpts VMOptions) (*VMResult, error) {
	return vm.RunSource(src, vmOpts)
}

// CostModel is a fitted empirical cost function of one routine.
type CostModel struct {
	// Routine is the routine name.
	Routine string
	// Metric is the input-size estimate the model was fitted against.
	Metric Metric
	// Formula renders the fitted model, e.g. "cost ~ 12 + 3.1*(n log n)".
	Formula string
	// ModelName is the asymptotic class, e.g. "n", "n log n", "n^2".
	ModelName string
	// R2 is the coefficient of determination of the fit.
	R2 float64
	// Exponent is the apparent power-law growth exponent from a log-log
	// regression (1 = linear, 2 = quadratic, ...).
	Exponent float64
	// RobustExponent is the Theil-Sen (outlier-resistant) estimate of the
	// same exponent; prefer it when costs come from wall-clock timing.
	RobustExponent float64
	// Points is the number of distinct input sizes fitted.
	Points int
}

// FitCost fits the named routine's worst-case cost plot under the chosen
// metric, returning the estimated empirical cost function.
func FitCost(ps *Profiles, routine string, metric Metric) (CostModel, error) {
	p := ps.Routine(routine)
	if p == nil {
		return CostModel{}, fmt.Errorf("aprof: no profile for routine %q", routine)
	}
	var pts []fit.Point
	for _, pp := range p.WorstCasePlot(metric) {
		pts = append(pts, fit.Point{N: float64(pp.N), Cost: float64(pp.Cost)})
	}
	best, err := fit.BestFit(pts)
	if err != nil {
		return CostModel{}, fmt.Errorf("aprof: routine %q: %w", routine, err)
	}
	model := CostModel{
		Routine:   routine,
		Metric:    metric,
		Formula:   best.String(),
		ModelName: best.Model.Name,
		R2:        best.R2,
		Points:    best.Points,
	}
	if exp, _, err := fit.PowerLaw(pts); err == nil {
		model.Exponent = exp
	}
	if robust, err := fit.RobustPowerLaw(pts); err == nil {
		model.RobustExponent = robust
	}
	return model, nil
}

// RoutineMetrics exposes the paper's evaluation metrics for every routine
// (profile richness, dynamic input volume, thread/external input shares).
type RoutineMetrics = metrics.Routine

// ComputeMetrics derives the per-routine evaluation metrics of a run.
func ComputeMetrics(ps *Profiles) []RoutineMetrics { return metrics.Compute(ps) }

// RunSummary is the run-level characterization of a profiling run.
type RunSummary = metrics.Summary

// Summarize derives the run-level dynamic-workload characterization.
func Summarize(ps *Profiles) RunSummary { return metrics.Summarize(ps) }

// WriteProfiles serializes profiles as JSON (the analogue of the report
// files the original aprof writes for aprof-plot).
func WriteProfiles(w io.Writer, ps *Profiles) error { return profio.Write(w, ps) }

// ReadProfiles deserializes profiles written by WriteProfiles.
func ReadProfiles(r io.Reader) (*Profiles, error) { return profio.Read(r) }

// HTMLReportOptions controls WriteHTMLReport.
type HTMLReportOptions = htmlreport.Options

// WriteHTMLReport renders a self-contained HTML report (per-routine table,
// dynamic-workload characterization, fitted cost functions, inline SVG
// rms-vs-drms plots) for archiving next to the profile.
func WriteHTMLReport(w io.Writer, ps *Profiles, opts HTMLReportOptions) error {
	return htmlreport.Write(w, ps, opts)
}

// MergeRuns combines the profiles of several runs (possibly from different
// processes) into one, reconciling routines by name: profiling an
// application on several workloads and merging widens the observed
// input-size range, improving the cost-function fits.
func MergeRuns(runs ...*Profiles) *Profiles { return core.MergeRuns(runs...) }

// MergeRunsParallel is MergeRuns executed as a tree reduction by a pool of
// workers (<= 0 uses GOMAXPROCS): O(log n) merge depth instead of a left
// fold, for merging the profiles of many runs on multi-core hosts. The
// result is equivalent to MergeRuns (profile merging is associative).
func MergeRunsParallel(workers int, runs ...*Profiles) *Profiles {
	return core.MergeRunsParallel(workers, runs...)
}

// Job produces one trace for RunConcurrent. Use TraceJob and ProgramJob for
// the common cases, or write a Job that decodes a trace file.
type Job = core.Job

// TraceJob wraps an already-built trace as a Job.
func TraceJob(tr *Trace) Job {
	return func(context.Context) (*Trace, error) { return tr, nil }
}

// ProgramJob compiles and executes a MiniLang program under the
// instrumented VM when the job is scheduled, yielding its trace.
func ProgramJob(src string, vmOpts VMOptions) Job {
	return func(context.Context) (*Trace, error) {
		res, err := vm.RunSource(src, vmOpts)
		if err != nil {
			return nil, err
		}
		return res.Trace, nil
	}
}

// RunConcurrent profiles N independent traces or VM programs in parallel
// with a worker pool (workers <= 0 uses GOMAXPROCS) and merges the per-run
// profiles with a parallel tree reduction. Every trace is profiled by the
// exact sequential algorithm, so per-trace results are identical to
// ProfileTrace; only orchestration is parallel. The first error (lowest job
// index) cancels outstanding work and is returned.
func RunConcurrent(ctx context.Context, jobs []Job, cfg Config, workers int) (*Profiles, error) {
	return core.RunConcurrent(ctx, jobs, cfg, workers)
}

// StreamOptions tunes the staged pipeline behind ProfileTraceStream: batch
// size and channel depth of the decoder stage.
type StreamOptions = profio.StreamOptions

// Observability re-exports. Attach a registry via Config.Obs to have the
// profiler and streaming pipeline publish metrics into it; a nil registry
// disables the layer entirely (the per-event cost is a single branch).
type (
	// ObsRegistry collects the profiler's runtime metrics, grouped into
	// named scopes ("core", "shadow", "profio", "experiments").
	ObsRegistry = obs.Registry
	// ObsSnapshot is a deterministic point-in-time copy of a registry.
	ObsSnapshot = obs.Snapshot
	// ObsRunSummary is the JSON document aprof writes next to profiles:
	// the final metrics snapshot plus the run's wall time.
	ObsRunSummary = obs.RunSummary
)

// NewObsRegistry creates an empty metrics registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// NewObsRunSummary builds the observability run summary for a finished run.
func NewObsRunSummary(r *ObsRegistry, wallMS int64) ObsRunSummary {
	return obs.NewRunSummary(r, wallMS)
}

// ProfileTraceStream profiles a binary trace incrementally from r through a
// two-stage pipeline: a decoder goroutine parses and validates events into
// reusable batches handed to the (serial) profiler over a bounded channel,
// overlapping decode with profiling. Events are handled in exact trace
// order, so the result is identical to profiling the decoded trace with
// ProfileTrace; trace files far larger than memory can be profiled (the
// profiler's own state is bounded by the traced program's footprint, not by
// the trace length — especially with Config.MaxPointsPerProfile set).
func ProfileTraceStream(r io.Reader, cfg Config) (*Profiles, error) {
	return profio.ProfileStream(context.Background(), r, cfg, profio.StreamOptions{})
}

// ProfileTraceStreamContext is ProfileTraceStream with cancellation and
// pipeline tuning: cancelling ctx aborts the run between batches. With
// StreamOptions.Lenient the trace is decoded fault-tolerantly (corrupt APT2
// frames are skipped and accounted in Profiles.Corruption); with
// StreamOptions.CheckpointPath the run is durable and resumable via
// ResumeTraceStream.
func ProfileTraceStreamContext(ctx context.Context, r io.Reader, cfg Config, opts StreamOptions) (*Profiles, error) {
	return profio.ProfileStream(ctx, r, cfg, opts)
}

// ResumeTraceStream restarts an interrupted checkpointed streaming run: r
// must stream the same trace as the original run, checkpointPath the
// checkpoint it wrote, and cfg the configuration it ran under. The output
// is byte-identical (under WriteProfiles) to an uninterrupted run.
func ResumeTraceStream(ctx context.Context, r io.Reader, checkpointPath string, cfg Config, opts StreamOptions) (*Profiles, error) {
	return profio.ResumeStream(ctx, r, checkpointPath, cfg, opts)
}

// WriteTraceBinary2 encodes a trace in the APT2 framed format: length-
// prefixed, CRC-32-checksummed event frames that a lenient reader can
// resynchronize over after corruption. The binary trace decoders and the
// streaming entry points accept both APT1 and APT2 transparently.
func WriteTraceBinary2(w io.Writer, tr *Trace) error { return trace.WriteBinary2(w, tr) }

// PlotOptions controls PlotASCII rendering.
type PlotOptions struct {
	// Width and Height are the plot area size in characters (default
	// 60x20).
	Width  int
	Height int
	// LogX and LogY select log10 axes.
	LogX bool
	LogY bool
}

// PlotASCII renders the named routine's worst-case cost plot as a text
// scatter plot, optionally alongside the other metric for comparison.
func PlotASCII(ps *Profiles, routine string, metric Metric, opts PlotOptions) (string, error) {
	p := ps.Routine(routine)
	if p == nil {
		return "", fmt.Errorf("aprof: no profile for routine %q", routine)
	}
	s := asciiplot.Series{Name: metric.String()}
	for _, pt := range p.WorstCasePlot(metric) {
		s.Points = append(s.Points, asciiplot.Point{X: float64(pt.N), Y: float64(pt.Cost)})
	}
	return asciiplot.Render([]asciiplot.Series{s}, asciiplot.Options{
		Title:  fmt.Sprintf("%s: worst-case cost plot", routine),
		XLabel: fmt.Sprintf("input size (%s)", metric),
		YLabel: "cost (basic blocks)",
		Width:  opts.Width,
		Height: opts.Height,
		LogX:   opts.LogX,
		LogY:   opts.LogY,
	}), nil
}

// PlotCompareASCII renders the routine's rms and drms worst-case cost plots
// in one chart — the side-by-side view of the paper's Figs. 4-6.
func PlotCompareASCII(ps *Profiles, routine string, opts PlotOptions) (string, error) {
	p := ps.Routine(routine)
	if p == nil {
		return "", fmt.Errorf("aprof: no profile for routine %q", routine)
	}
	var series []asciiplot.Series
	for _, metric := range []Metric{RMS, DRMS} {
		s := asciiplot.Series{Name: metric.String()}
		for _, pt := range p.WorstCasePlot(metric) {
			s.Points = append(s.Points, asciiplot.Point{X: float64(pt.N), Y: float64(pt.Cost)})
		}
		series = append(series, s)
	}
	return asciiplot.Render(series, asciiplot.Options{
		Title:  fmt.Sprintf("%s: rms vs drms worst-case cost plots", routine),
		XLabel: "input size estimate",
		YLabel: "cost (basic blocks)",
		Width:  opts.Width,
		Height: opts.Height,
		LogX:   opts.LogX,
		LogY:   opts.LogY,
	}), nil
}
