package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aprof"
	"aprof/internal/trace"
)

// TestLenientStreamEntry exercises the library path behind -trace -lenient:
// a corrupt APT2 trace must profile with loss reported instead of aborting.
func TestLenientStreamEntry(t *testing.T) {
	tr := trace.Random(trace.RandomConfig{Seed: 30, Ops: 400})
	var buf bytes.Buffer
	if err := trace.WriteBinary2Opts(&buf, tr, trace.V2Options{EventsPerFrame: 64}); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	enc[len(enc)/2] ^= 0x08

	cfg := aprof.DefaultConfig()
	cfg.FaultPolicy = aprof.FaultCount
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	opts := aprof.StreamOptions{Lenient: true, CheckpointPath: ckpt, CheckpointEvery: 1, BatchSize: 64}
	ps, err := aprof.ProfileTraceStreamContext(context.Background(), bytes.NewReader(enc), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Corruption.FramesDropped == 0 {
		t.Error("corruption not reported")
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Errorf("checkpoint not written: %v", err)
	}
	// reportLoss must not panic on either a lossy or a clean result.
	reportLoss(ps)
	reportLoss(&aprof.Profiles{})
}

func TestConfigFor(t *testing.T) {
	cases := []struct {
		in         string
		wantThread bool
		wantExt    bool
		wantMetric aprof.Metric
		wantErr    bool
	}{
		{"drms", true, true, aprof.DRMS, false},
		{"DRMS", true, true, aprof.DRMS, false},
		{"rms", false, false, aprof.RMS, false},
		{"external-only", false, true, aprof.DRMS, false},
		{"external", false, true, aprof.DRMS, false},
		{"bogus", false, false, 0, true},
	}
	for _, tc := range cases {
		cfg, metric, err := configFor(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("configFor(%q) accepted", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("configFor(%q): %v", tc.in, err)
			continue
		}
		if cfg.ThreadInput != tc.wantThread || cfg.ExternalInput != tc.wantExt {
			t.Errorf("configFor(%q) = %+v", tc.in, cfg)
		}
		if metric != tc.wantMetric {
			t.Errorf("configFor(%q) metric = %v, want %v", tc.in, metric, tc.wantMetric)
		}
	}
}

// buildAprof compiles the aprof binary once per test run.
func buildAprof(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "aprof")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestProgressStderrOnly runs the real binary and checks the -progress
// contract: the progress line goes to stderr only, stdout is byte-identical
// to a run without -progress, and the run summary lands next to the JSON
// profile.
func TestProgressStderrOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the aprof binary")
	}
	bin := buildAprof(t)
	dir := t.TempDir()

	tr := trace.Random(trace.RandomConfig{Seed: 31, Ops: 2000})
	tracePath := filepath.Join(dir, "trace.bin")
	var buf bytes.Buffer
	if err := trace.WriteBinary2(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tracePath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(args ...string) (stdout, stderr string) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		var out, errb bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &errb
		if err := cmd.Run(); err != nil {
			t.Fatalf("aprof %v: %v\nstderr: %s", args, err, errb.String())
		}
		return out.String(), errb.String()
	}

	jsonPath := filepath.Join(dir, "profiles.json")
	plainOut, _ := run("-trace", tracePath)
	progOut, progErr := run("-trace", tracePath, "-progress", "-json", jsonPath)

	if progOut != plainOut {
		t.Errorf("-progress changed stdout:\n--- without ---\n%s\n--- with ---\n%s", plainOut, progOut)
	}
	if !strings.Contains(progErr, "events") {
		t.Errorf("no progress line on stderr: %q", progErr)
	}

	data, err := os.ReadFile(jsonPath + ".obs.json")
	if err != nil {
		t.Fatalf("run summary not written: %v", err)
	}
	var summary aprof.ObsRunSummary
	if err := json.Unmarshal(data, &summary); err != nil {
		t.Fatalf("run summary unparseable: %v", err)
	}
	if summary.Schema != 1 {
		t.Errorf("summary schema = %d, want 1", summary.Schema)
	}
	core := summary.Metrics.Scope("core")
	if core == nil {
		t.Fatal("summary has no core scope")
	}
	if got := core.CounterSum("events_"); got == 0 {
		t.Error("summary reports zero events")
	}
}

// TestInterruptWritesFinalCheckpoint drives the real binary through an
// interrupted streaming run: the trace arrives over a FIFO that stalls
// mid-stream, SIGINT lands while the pipeline is blocked, and the binary
// must exit 130 with a final checkpoint and a resume hint. Resuming from
// that checkpoint over the complete trace must reproduce the uninterrupted
// profile byte for byte.
func TestInterruptWritesFinalCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the aprof binary")
	}
	bin := buildAprof(t)
	dir := t.TempDir()

	tr := trace.Random(trace.RandomConfig{Seed: 33, Ops: 3000, Threads: 3})
	var buf bytes.Buffer
	if err := trace.WriteBinary2(&buf, tr); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	tracePath := filepath.Join(dir, "trace.bin")
	if err := os.WriteFile(tracePath, enc, 0o644); err != nil {
		t.Fatal(err)
	}

	// The reference: an uninterrupted run over the full trace.
	wantJSON := filepath.Join(dir, "want.json")
	if out, err := exec.Command(bin, "-trace", tracePath, "-json", wantJSON).CombinedOutput(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, out)
	}
	want, err := os.ReadFile(wantJSON)
	if err != nil {
		t.Fatal(err)
	}

	fifo := filepath.Join(dir, "trace.fifo")
	if out, err := exec.Command("mkfifo", fifo).CombinedOutput(); err != nil {
		t.Skipf("mkfifo unavailable: %v\n%s", err, out)
	}

	ckpt := filepath.Join(dir, "run.apck")
	gotJSON := filepath.Join(dir, "got.json")
	cmd := exec.Command(bin, "-trace", fifo, "-checkpoint", ckpt, "-checkpoint-every", "1", "-json", gotJSON)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Feed two thirds of the trace, then stall with the FIFO still open so
	// the binary cannot finish before the signal arrives.
	w, err := os.OpenFile(fifo, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(enc[:len(enc)*2/3]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let the pipeline drain what arrived
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	w.Close() // unblock the decoder's pending read

	err = cmd.Wait()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 130 {
		t.Fatalf("interrupted run exited %v (stderr: %s), want exit 130", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-resume "+ckpt) {
		t.Fatalf("no resume hint on stderr: %q", stderr.String())
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no final checkpoint written: %v", err)
	}

	// Resume over the complete trace file and compare byte for byte.
	if out, err := exec.Command(bin, "-trace", tracePath, "-resume", ckpt, "-json", gotJSON).CombinedOutput(); err != nil {
		t.Fatalf("resume run: %v\n%s", err, out)
	}
	got, err := os.ReadFile(gotJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed profile differs from the uninterrupted run")
	}
}
