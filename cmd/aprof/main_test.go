package main

import (
	"testing"

	"aprof"
)

func TestConfigFor(t *testing.T) {
	cases := []struct {
		in         string
		wantThread bool
		wantExt    bool
		wantMetric aprof.Metric
		wantErr    bool
	}{
		{"drms", true, true, aprof.DRMS, false},
		{"DRMS", true, true, aprof.DRMS, false},
		{"rms", false, false, aprof.RMS, false},
		{"external-only", false, true, aprof.DRMS, false},
		{"external", false, true, aprof.DRMS, false},
		{"bogus", false, false, 0, true},
	}
	for _, tc := range cases {
		cfg, metric, err := configFor(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("configFor(%q) accepted", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("configFor(%q): %v", tc.in, err)
			continue
		}
		if cfg.ThreadInput != tc.wantThread || cfg.ExternalInput != tc.wantExt {
			t.Errorf("configFor(%q) = %+v", tc.in, cfg)
		}
		if metric != tc.wantMetric {
			t.Errorf("configFor(%q) metric = %v, want %v", tc.in, metric, tc.wantMetric)
		}
	}
}
