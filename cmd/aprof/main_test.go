package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"aprof"
	"aprof/internal/trace"
)

// TestLenientStreamEntry exercises the library path behind -trace -lenient:
// a corrupt APT2 trace must profile with loss reported instead of aborting.
func TestLenientStreamEntry(t *testing.T) {
	tr := trace.Random(trace.RandomConfig{Seed: 30, Ops: 400})
	var buf bytes.Buffer
	if err := trace.WriteBinary2Opts(&buf, tr, trace.V2Options{EventsPerFrame: 64}); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	enc[len(enc)/2] ^= 0x08

	cfg := aprof.DefaultConfig()
	cfg.FaultPolicy = aprof.FaultCount
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	opts := aprof.StreamOptions{Lenient: true, CheckpointPath: ckpt, CheckpointEvery: 1, BatchSize: 64}
	ps, err := aprof.ProfileTraceStreamContext(context.Background(), bytes.NewReader(enc), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Corruption.FramesDropped == 0 {
		t.Error("corruption not reported")
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Errorf("checkpoint not written: %v", err)
	}
	// reportLoss must not panic on either a lossy or a clean result.
	reportLoss(ps)
	reportLoss(&aprof.Profiles{})
}

func TestConfigFor(t *testing.T) {
	cases := []struct {
		in         string
		wantThread bool
		wantExt    bool
		wantMetric aprof.Metric
		wantErr    bool
	}{
		{"drms", true, true, aprof.DRMS, false},
		{"DRMS", true, true, aprof.DRMS, false},
		{"rms", false, false, aprof.RMS, false},
		{"external-only", false, true, aprof.DRMS, false},
		{"external", false, true, aprof.DRMS, false},
		{"bogus", false, false, 0, true},
	}
	for _, tc := range cases {
		cfg, metric, err := configFor(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("configFor(%q) accepted", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("configFor(%q): %v", tc.in, err)
			continue
		}
		if cfg.ThreadInput != tc.wantThread || cfg.ExternalInput != tc.wantExt {
			t.Errorf("configFor(%q) = %+v", tc.in, cfg)
		}
		if metric != tc.wantMetric {
			t.Errorf("configFor(%q) metric = %v, want %v", tc.in, metric, tc.wantMetric)
		}
	}
}
