// Command aprof profiles a MiniLang program or a saved execution trace with
// the input-sensitive profiler and prints per-routine empirical cost
// information.
//
// Usage:
//
//	aprof [-metric drms|rms|external-only] [-top N] [-fit] [-plots] program.ml
//	aprof -trace trace.bin [flags]
//
// The metric flag selects which dynamic input sources the profiler
// recognizes: "drms" (thread and kernel input, the paper's metric), "rms"
// (plain aprof), or "external-only" (kernel input only).
//
// Observability: -progress prints a periodic progress line to stderr (never
// stdout, so piped profiles stay clean); -debug-addr serves live metrics,
// expvar and net/http/pprof over HTTP; -obs-summary writes a JSON metrics
// run summary, and with -json one is written next to the profile by default
// (<json>.obs.json).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aprof"
	"aprof/internal/obs"
	"aprof/internal/trace"
)

func main() {
	var (
		traceIn  = flag.String("trace", "", "profile this saved trace instead of running a program")
		format   = flag.String("format", "binary", "trace format of -trace: binary or text")
		metric   = flag.String("metric", "drms", "input metric: drms, rms, or external-only")
		topN     = flag.Int("top", 0, "report only the N most expensive routines (0 = all)")
		fitFlag  = flag.Bool("fit", false, "fit empirical cost functions")
		plots    = flag.Bool("plots", false, "print worst-case cost plot points")
		routine  = flag.String("routine", "", "print only this routine's cost plot and fit")
		quantum  = flag.Int("quantum", 0, "VM scheduling quantum in basic blocks")
		jsonOut  = flag.String("json", "", "write the profiles as JSON to this file")
		ascii    = flag.Bool("ascii", false, "with -routine: render the cost plot as an ASCII chart")
		optimize = flag.Bool("optimize", false, "optimize the program's bytecode before execution")
		contexts = flag.Int("contexts", 0, "report the N hottest calling contexts (enables context-sensitive profiling)")
		htmlOut  = flag.String("html", "", "write a self-contained HTML report to this file")

		shards      = flag.Int("shards", 1, "profile on this many per-thread shards in parallel (output is byte-identical to -shards 1)")
		lenient     = flag.Bool("lenient", false, "with -trace: skip corrupt APT2 frames instead of aborting, reporting what was lost")
		faultPolicy = flag.String("fault-policy", "strict", "malformed-event handling: strict, skip, or count")
		checkpoint  = flag.String("checkpoint", "", "with -trace: periodically write a resumable checkpoint to this file")
		ckptEvery   = flag.Int("checkpoint-every", 0, "batches between checkpoints (default 16)")
		resume      = flag.String("resume", "", "with -trace: resume an interrupted run from this checkpoint file")

		progress  = flag.Bool("progress", false, "print a periodic progress line to stderr")
		debugAddr = flag.String("debug-addr", "", "serve live metrics, expvar and pprof on this address (e.g. localhost:6060)")
		obsOut    = flag.String("obs-summary", "", "write a JSON metrics run summary to this path (default <json>.obs.json when -json is set)")
	)
	flag.Parse()

	// The observability registry is created only when some surface will
	// consume it; a nil registry compiles the instrumentation to no-ops.
	summaryPath := *obsOut
	if summaryPath == "" && *jsonOut != "" {
		summaryPath = *jsonOut + ".obs.json"
	}
	var reg *obs.Registry
	if *progress || *debugAddr != "" || summaryPath != "" {
		reg = obs.NewRegistry()
	}
	start := time.Now()

	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "aprof: debug server on http://%s/debug/obs\n", srv.Addr())
	}
	if *progress {
		stop := obs.StartProgress(context.Background(), os.Stderr, 0, func() string {
			snap := reg.Snapshot()
			core := snap.Scope("core")
			return fmt.Sprintf("aprof: %s elapsed, %d events (%d dropped)",
				time.Since(start).Round(time.Millisecond),
				core.CounterSum("events_"), core.CounterSum("drops_"))
		})
		defer stop()
	}

	cfg, plotMetric, err := configFor(*metric)
	if err != nil {
		fatal(err)
	}
	if *contexts > 0 {
		cfg.ContextSensitive = true
	}
	cfg.FaultPolicy, err = aprof.ParseFaultPolicy(*faultPolicy)
	if err != nil {
		fatal(err)
	}
	cfg.Obs = reg

	var tr *aprof.Trace
	var ps *aprof.Profiles
	switch {
	case *traceIn != "":
		f, err := os.Open(*traceIn)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if *format == "text" {
			tr, err = trace.ReadText(f)
			if err != nil {
				fatal(err)
			}
		} else {
			// Binary traces are profiled in streaming mode: the file is
			// never materialized in memory. SIGINT/SIGTERM cancels the
			// stream; with -checkpoint set, the pipeline writes one final
			// checkpoint on the way out so the run is resumable.
			ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
			defer stop()
			opts := aprof.StreamOptions{
				Lenient:         *lenient,
				CheckpointPath:  *checkpoint,
				CheckpointEvery: *ckptEvery,
				Shards:          *shards,
			}
			if *resume != "" {
				if opts.CheckpointPath == "" {
					// Keep checkpointing where we resumed from, so repeated
					// crashes keep making progress.
					opts.CheckpointPath = *resume
				}
				opts.FinalCheckpoint = true
				ps, err = aprof.ResumeTraceStream(ctx, f, *resume, cfg, opts)
			} else {
				opts.FinalCheckpoint = opts.CheckpointPath != ""
				ps, err = aprof.ProfileTraceStreamContext(ctx, f, cfg, opts)
			}
			if err != nil {
				if ctx.Err() != nil {
					stop() // restore default handling: a second ^C kills hard
					if opts.CheckpointPath != "" {
						fmt.Fprintf(os.Stderr, "aprof: interrupted; resume with -trace %s -resume %s\n",
							*traceIn, opts.CheckpointPath)
					} else {
						fmt.Fprintln(os.Stderr, "aprof: interrupted")
					}
					os.Exit(130)
				}
				fatal(err)
			}
			reportLoss(ps)
		}
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		res, err := aprof.RunProgram(string(src), aprof.VMOptions{Quantum: *quantum, Stdout: os.Stderr, Optimize: *optimize})
		if err != nil {
			fatal(err)
		}
		tr = res.Trace
	default:
		fmt.Fprintln(os.Stderr, "usage: aprof [flags] program.ml   or   aprof -trace trace.bin [flags]")
		flag.Usage()
		os.Exit(2)
	}

	if ps == nil {
		var err error
		ps, err = aprof.ProfileTraceSharded(tr, cfg, *shards)
		if err != nil {
			fatal(err)
		}
	}

	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fatal(err)
		}
		if err := aprof.WriteHTMLReport(f, ps, aprof.HTMLReportOptions{Title: "aprof-drms report"}); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := aprof.WriteProfiles(f, ps); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if reg != nil && summaryPath != "" {
		summary := obs.NewRunSummary(reg, time.Since(start).Milliseconds())
		if err := summary.WriteFile(summaryPath); err != nil {
			fatal(err)
		}
	}

	if *routine != "" {
		p := ps.Routine(*routine)
		if p == nil {
			fatal(fmt.Errorf("no profile for routine %q", *routine))
		}
		fmt.Printf("routine %s: %d calls, cost %d\n", *routine, p.Calls, p.TotalCost)
		if *ascii {
			chart, err := aprof.PlotCompareASCII(ps, *routine, aprof.PlotOptions{})
			if err != nil {
				fatal(err)
			}
			fmt.Print(chart)
		} else {
			fmt.Printf("plot [%s]: n -> max cost\n", plotMetric)
			for _, pt := range p.WorstCasePlot(plotMetric) {
				fmt.Printf("  %d\t%d\t(%d calls)\n", pt.N, pt.Cost, pt.Calls)
			}
		}
		if model, err := aprof.FitCost(ps, *routine, plotMetric); err == nil {
			fmt.Printf("fit: %s (exponent %.2f)\n", model.Formula, model.Exponent)
		}
		return
	}

	fmt.Print(aprof.Report(ps, aprof.ReportOptions{
		TopN:     *topN,
		Metric:   plotMetric,
		Fit:      *fitFlag,
		Plots:    *plots,
		Contexts: *contexts,
	}))
}

func configFor(metric string) (aprof.Config, aprof.Metric, error) {
	switch strings.ToLower(metric) {
	case "drms":
		return aprof.DefaultConfig(), aprof.DRMS, nil
	case "rms":
		return aprof.RMSOnlyConfig(), aprof.RMS, nil
	case "external-only", "external":
		return aprof.ExternalOnlyConfig(), aprof.DRMS, nil
	default:
		return aprof.Config{}, 0, fmt.Errorf("unknown metric %q (want drms, rms, or external-only)", metric)
	}
}

// reportLoss prints to stderr what a lenient or non-strict run lost, so
// degraded results are never mistaken for complete ones.
func reportLoss(ps *aprof.Profiles) {
	if c := ps.Corruption; c.FramesDropped > 0 || c.EventsDropped > 0 || c.Truncated {
		fmt.Fprintf(os.Stderr, "aprof: trace corruption: %d frames / %d events dropped, %d bytes skipped",
			c.FramesDropped, c.EventsDropped, c.BytesSkipped)
		if c.Truncated {
			fmt.Fprint(os.Stderr, " (trace truncated)")
		}
		fmt.Fprintln(os.Stderr)
		for _, e := range c.Errors {
			fmt.Fprintln(os.Stderr, "aprof:   ", e)
		}
	}
	if !ps.Drops.IsZero() {
		fmt.Fprintf(os.Stderr, "aprof: %d malformed events dropped (policy count): %+v\n", ps.Drops.Total(), ps.Drops)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aprof:", err)
	os.Exit(1)
}
