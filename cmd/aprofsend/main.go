// Command aprofsend uploads a saved APT2 trace to an aprofd daemon,
// reconnecting with capped exponential backoff and resuming from the
// server's checkpoint when the connection — or the daemon — dies mid-way.
//
// Usage:
//
//	aprofsend -addr localhost:7071 -session build-42 trace.bin
//	aprofsend -cluster host1:7071,host2:7071,host3:7071 -session build-42 trace.bin
//
// With -cluster the session id picks its node on the consistent-hash
// ring, and the upload fails over to the ring successor when the chosen
// node refuses connections, sheds the session as busy, or keeps dying
// mid-stream — resuming from the server-acked offset either way.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aprof/internal/server"
	"aprof/internal/server/client"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7071", "aprofd address")
		clusterN = flag.String("cluster", "", "comma-separated aprofd node addresses; routes by session id with ring-successor failover (overrides -addr)")
		session  = flag.String("session", "", "session id (required; names the profile on the server)")
		lenient  = flag.Bool("lenient", false, "ask the server to skip corrupt APT2 frames instead of aborting")
		suppress = flag.Bool("suppress", false, "declare an effect-suppressed trace (vm.Options.Suppress); the profile is identical, the server counts it")
		attempts = flag.Int("attempts", client.DefaultMaxAttempts, "consecutive failed attempts tolerated (progress resets the count)")
		backoff  = flag.Duration("backoff", client.DefaultBackoff, "base reconnect backoff (doubles per consecutive failure)")
		jitter   = flag.Float64("jitter", 0.2, "reconnect backoff jitter fraction")
		verbose  = flag.Bool("v", false, "log reconnect attempts to stderr")
	)
	flag.Parse()
	if flag.NArg() != 1 || *session == "" {
		fmt.Fprintln(os.Stderr, "usage: aprofsend -addr HOST:PORT -session ID trace.bin")
		flag.Usage()
		os.Exit(2)
	}
	if !server.ValidSessionID(*session) {
		fatal(fmt.Errorf("invalid session id %q (want [A-Za-z0-9._-]+, at most 64 chars)", *session))
	}
	path := flag.Arg(0)
	if _, err := os.Stat(path); err != nil {
		fatal(err)
	}

	// Ctrl-C stops the upload cleanly; the server keeps its checkpoint, so
	// a later aprofsend with the same session id resumes where this left off.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := client.Options{
		Addr:        *addr,
		SessionID:   *session,
		Lenient:     *lenient,
		Suppressed:  *suppress,
		Open:        func() (io.ReadCloser, error) { return os.Open(path) },
		MaxAttempts: *attempts,
		Backoff:     *backoff,
		Jitter:      *jitter,
		Seed:        time.Now().UnixNano(),
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *clusterN != "" {
		nodes := strings.Split(*clusterN, ",")
		for i := range nodes {
			nodes[i] = strings.TrimSpace(nodes[i])
		}
		dialer, err := client.NewClusterDialer(client.ClusterOptions{
			Nodes:     nodes,
			SessionID: *session,
			Logf:      opts.Logf,
		})
		if err != nil {
			fatal(err)
		}
		opts.Addr = ""
		opts.Dialer = dialer
	}

	res, err := client.Run(ctx, opts)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "aprofsend: interrupted after %d delivered events; rerun to resume session %q\n",
				res.Delivered, *session)
			os.Exit(130)
		}
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "aprofsend: session %q complete: %d events delivered (%d acks, %d reconnects",
		*session, res.Delivered, res.Acks, res.Reconnects)
	if res.ResumedFrom > 0 {
		fmt.Fprintf(os.Stderr, ", resumed from event %d", res.ResumedFrom)
	}
	fmt.Fprintln(os.Stderr, ")")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aprofsend:", err)
	os.Exit(1)
}
