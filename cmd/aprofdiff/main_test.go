package main

import (
	"strings"
	"testing"

	"aprof"
)

// buildRun profiles a synthetic workload whose "process" routine costs
// factor basic blocks per input cell, over a sweep of sizes; the growth
// function chooses the per-size cost.
func buildRun(t *testing.T, grow func(n int) uint64, extraRoutine string) *aprof.Profiles {
	t.Helper()
	b := aprof.NewTraceBuilder()
	tb := b.Thread(1)
	tb.Call("main")
	for n := 10; n <= 200; n += 10 {
		tb.Call("process")
		tb.Read(0x1000, uint32(n))
		tb.Work(grow(n))
		tb.Ret()
	}
	if extraRoutine != "" {
		tb.Call(extraRoutine)
		tb.Work(5)
		tb.Ret()
	}
	tb.Ret()
	ps, err := aprof.ProfileTrace(b.Trace(), aprof.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestDiffNoRegression(t *testing.T) {
	linear := func(n int) uint64 { return uint64(5 * n) }
	oldPs := buildRun(t, linear, "")
	newPs := buildRun(t, linear, "")
	report, regressed := diff(oldPs, newPs, aprof.DRMS, 10)
	if regressed {
		t.Errorf("identical runs flagged as regression:\n%s", report)
	}
	if !strings.Contains(report, "process") {
		t.Errorf("report missing routine:\n%s", report)
	}
	if strings.Contains(report, "REGRESSION") {
		t.Errorf("report contains REGRESSION banner:\n%s", report)
	}
}

func TestDiffCostRegression(t *testing.T) {
	oldPs := buildRun(t, func(n int) uint64 { return uint64(5 * n) }, "")
	newPs := buildRun(t, func(n int) uint64 { return uint64(8 * n) }, "") // +60% per call
	report, regressed := diff(oldPs, newPs, aprof.DRMS, 10)
	if !regressed {
		t.Errorf("60%% cost growth not flagged:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION") {
		t.Errorf("missing banner:\n%s", report)
	}
}

func TestDiffAsymptoticRegression(t *testing.T) {
	oldPs := buildRun(t, func(n int) uint64 { return uint64(5 * n) }, "")
	newPs := buildRun(t, func(n int) uint64 { return uint64(n * n / 4) }, "")
	report, regressed := diff(oldPs, newPs, aprof.DRMS, 1e9) // cost threshold effectively off
	if !regressed {
		t.Errorf("linear->quadratic growth not flagged:\n%s", report)
	}
	if !strings.Contains(report, "asymptotic regression") {
		t.Errorf("missing asymptotic marker:\n%s", report)
	}
	if !strings.Contains(report, "n -> n^2") {
		t.Errorf("missing model transition:\n%s", report)
	}
}

func TestDiffImprovementNotFlagged(t *testing.T) {
	oldPs := buildRun(t, func(n int) uint64 { return uint64(n * n / 4) }, "")
	newPs := buildRun(t, func(n int) uint64 { return uint64(5 * n) }, "")
	_, regressed := diff(oldPs, newPs, aprof.DRMS, 10)
	if regressed {
		t.Error("an improvement was flagged as regression")
	}
}

func TestDiffAddedAndRemovedRoutines(t *testing.T) {
	oldPs := buildRun(t, func(n int) uint64 { return uint64(n) }, "legacy_helper")
	newPs := buildRun(t, func(n int) uint64 { return uint64(n) }, "new_helper")
	report, _ := diff(oldPs, newPs, aprof.DRMS, 10)
	if !strings.Contains(report, "+ new_helper (new routine)") {
		t.Errorf("missing added routine:\n%s", report)
	}
	if !strings.Contains(report, "- legacy_helper (removed)") {
		t.Errorf("missing removed routine:\n%s", report)
	}
}

func TestModelRankOrdering(t *testing.T) {
	prev := -1
	for _, name := range []string{"1", "log n", "n", "n log n", "n^2", "n^3"} {
		r := modelRank(name)
		if r <= prev {
			t.Errorf("rank(%q) = %d, not increasing", name, r)
		}
		prev = r
	}
	if modelRank("bogus") != -1 {
		t.Error("unknown model should rank -1")
	}
}
