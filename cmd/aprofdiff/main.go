// Command aprofdiff compares two profile files (written by `aprof -json` or
// aprof.WriteProfiles) and reports per-routine changes in cost, input size
// and fitted cost-function class — the profiler-native analogue of a
// benchmark regression check.
//
// Usage:
//
//	aprofdiff [-threshold PCT] [-metric drms|rms] old.json new.json
//	aprofdiff -store DIR [-threshold PCT] [-metric drms|rms] OLD-SESSION NEW-SESSION
//
// With -store the two positional arguments name sessions in an aprofd
// profile repository (see aprofd -store and the aprofstore command)
// instead of JSON files on disk.
//
// The exit status is 2 on usage errors, 1 when any routine's cost regressed
// by more than the threshold (or its fitted asymptotic class grew), and 0
// otherwise, so the command can gate CI.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"aprof"
	"aprof/internal/fit"
	"aprof/internal/repo"
	"aprof/internal/repo/backend"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 10, "flag cost regressions above this percentage")
		metricStr = flag.String("metric", "drms", "input metric for fits: drms or rms")
		storeDir  = flag.String("store", "", "read profiles from this repository; arguments are session ids, not files")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: aprofdiff [-threshold PCT] OLD.json NEW.json")
		fmt.Fprintln(os.Stderr, "       aprofdiff -store DIR [-threshold PCT] OLD-SESSION NEW-SESSION")
		os.Exit(2)
	}
	metric := aprof.DRMS
	if strings.EqualFold(*metricStr, "rms") {
		metric = aprof.RMS
	}
	load := loadProfiles
	if *storeDir != "" {
		store, err := openStore(*storeDir)
		if err != nil {
			fatal(err)
		}
		load = func(sessionID string) (*aprof.Profiles, error) {
			data, err := store.GetSession(sessionID)
			if err != nil {
				return nil, err
			}
			return aprof.ReadProfiles(bytes.NewReader(data))
		}
	}
	oldPs, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newPs, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	report, regressed := diff(oldPs, newPs, metric, *threshold)
	fmt.Print(report)
	if regressed {
		os.Exit(1)
	}
}

func loadProfiles(path string) (*aprof.Profiles, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return aprof.ReadProfiles(f)
}

// openStore opens an existing profile repository read-only-ish (aprofdiff
// never writes to it).
func openStore(dir string) (*repo.Repository, error) {
	be, err := backend.OpenLocal(dir)
	if err != nil {
		return nil, err
	}
	return repo.Open(be, repo.Options{})
}

// routineDiff is the comparison of one routine across the two runs.
type routineDiff struct {
	Name      string
	OldCalls  uint64
	NewCalls  uint64
	OldCost   uint64
	NewCost   uint64
	CostPct   float64 // percentage change of cost per call
	OldModel  string
	NewModel  string
	ModelGrew bool
}

// modelRank orders asymptotic classes by growth.
func modelRank(name string) int {
	for i, m := range fit.Models {
		if m.Name == name {
			return i
		}
	}
	return -1
}

// fitModelName fits the routine's plot, returning "" when there are too few
// points.
func fitModelName(p *aprof.Profile, metric aprof.Metric) string {
	plot := p.WorstCasePlot(metric)
	if len(plot) < 5 {
		return ""
	}
	var pts []fit.Point
	for _, pp := range plot {
		pts = append(pts, fit.Point{N: float64(pp.N), Cost: float64(pp.Cost)})
	}
	best, err := fit.BestFit(pts)
	if err != nil {
		return ""
	}
	return best.Model.Name
}

// diff renders the comparison and reports whether any routine regressed.
func diff(oldPs, newPs *aprof.Profiles, metric aprof.Metric, thresholdPct float64) (string, bool) {
	oldRoutines := mergedByName(oldPs)
	newRoutines := mergedByName(newPs)

	var names []string
	seen := map[string]bool{}
	for name := range oldRoutines {
		names = append(names, name)
		seen[name] = true
	}
	for name := range newRoutines {
		if !seen[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var sb strings.Builder
	var added, removed []string
	var diffs []routineDiff
	regressed := false
	for _, name := range names {
		op, oldOK := oldRoutines[name]
		np, newOK := newRoutines[name]
		switch {
		case !oldOK:
			added = append(added, name)
			continue
		case !newOK:
			removed = append(removed, name)
			continue
		}
		d := routineDiff{
			Name:     name,
			OldCalls: op.Calls, NewCalls: np.Calls,
			OldCost: op.TotalCost, NewCost: np.TotalCost,
			OldModel: fitModelName(op, metric),
			NewModel: fitModelName(np, metric),
		}
		oldPer := perCall(op.TotalCost, op.Calls)
		newPer := perCall(np.TotalCost, np.Calls)
		if oldPer > 0 {
			d.CostPct = 100 * (newPer - oldPer) / oldPer
		}
		if d.OldModel != "" && d.NewModel != "" && modelRank(d.NewModel) > modelRank(d.OldModel) {
			d.ModelGrew = true
		}
		if d.CostPct > thresholdPct || d.ModelGrew {
			regressed = true
		}
		diffs = append(diffs, d)
	}
	sort.Slice(diffs, func(i, j int) bool { return math.Abs(diffs[i].CostPct) > math.Abs(diffs[j].CostPct) })

	fmt.Fprintf(&sb, "%-28s %10s %10s %9s  %s\n", "routine", "old cost", "new cost", "Δ/call", "cost model")
	sb.WriteString(strings.Repeat("-", 84))
	sb.WriteByte('\n')
	for _, d := range diffs {
		model := d.NewModel
		if d.OldModel != d.NewModel && d.OldModel != "" {
			model = fmt.Sprintf("%s -> %s", orDash(d.OldModel), orDash(d.NewModel))
			if d.ModelGrew {
				model += "  !! asymptotic regression"
			}
		}
		marker := " "
		if d.CostPct > thresholdPct {
			marker = "!"
		}
		fmt.Fprintf(&sb, "%-28s %10d %10d %8.1f%%%s %s\n",
			d.Name, d.OldCost, d.NewCost, d.CostPct, marker, orDash(model))
	}
	for _, name := range added {
		fmt.Fprintf(&sb, "+ %s (new routine)\n", name)
	}
	for _, name := range removed {
		fmt.Fprintf(&sb, "- %s (removed)\n", name)
	}
	if regressed {
		fmt.Fprintf(&sb, "\nREGRESSION: at least one routine exceeded +%.1f%% cost per call or grew its cost model\n", thresholdPct)
	}
	return sb.String(), regressed
}

func mergedByName(ps *aprof.Profiles) map[string]*aprof.Profile {
	out := make(map[string]*aprof.Profile)
	for id, p := range ps.MergeThreads() {
		out[ps.Symbols.Name(id)] = p
	}
	return out
}

func perCall(cost, calls uint64) float64 {
	if calls == 0 {
		return 0
	}
	return float64(cost) / float64(calls)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aprofdiff:", err)
	os.Exit(1)
}
