package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeProgram(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestVetCleanProgram(t *testing.T) {
	path := writeProgram(t, "clean.ml", `
fn main() {
	var n = 3;
	print(n);
}
`)
	var out strings.Builder
	if code := vet([]string{path}, &out); code != 0 {
		t.Fatalf("exit %d on clean program, output:\n%s", code, out.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected output for clean program:\n%s", out.String())
	}
}

func TestVetReportsDiagnostics(t *testing.T) {
	path := writeProgram(t, "dirty.ml", `
fn main() {
	var unused = 1;
	if (1 < 0) {
		print(9);
	}
	print(0);
}
`)
	var out strings.Builder
	if code := vet([]string{path}, &out); code != 1 {
		t.Fatalf("exit %d on program with findings, output:\n%s", code, out.String())
	}
	got := out.String()
	for _, want := range []string{path + ":", "V002", "V005"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestVetReportsSyntaxErrorWithPosition(t *testing.T) {
	path := writeProgram(t, "broken.ml", "fn main( {\n")
	var out strings.Builder
	if code := vet([]string{path}, &out); code != 1 {
		t.Fatalf("exit %d on unparsable program, output:\n%s", code, out.String())
	}
	got := out.String()
	if !strings.Contains(got, path+":1:") || !strings.Contains(got, "error:") {
		t.Errorf("syntax error not reported with file:line position:\n%s", got)
	}
}

func TestVetMissingFile(t *testing.T) {
	var out strings.Builder
	if code := vet([]string{filepath.Join(t.TempDir(), "absent.ml")}, &out); code != 2 {
		t.Fatalf("exit %d for missing file, want 2", code)
	}
}

func TestVetNoArgs(t *testing.T) {
	var out strings.Builder
	if code := vet(nil, &out); code != 2 {
		t.Fatalf("exit %d for no arguments, want 2", code)
	}
}

func TestEffectsReportsBlocks(t *testing.T) {
	path := writeProgram(t, "kernel.ml", `
fn main() {
	var a = alloc(4);
	var s = a[0] + a[1] + a[0];
	a[2] = s;
	a[3] = s;
	print(s);
}
`)
	var out, errOut strings.Builder
	if code := effects([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"fn main", "aggregate", "[elided]"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}

func TestEffectsWarningsDoNotGate(t *testing.T) {
	// A program with both a lint finding (V002) and a V007 dead store must
	// still produce a full report and exit 0: diagnostics are advisory.
	path := writeProgram(t, "warny.ml", `
fn main() {
	var unused = 1;
	var a = alloc(2);
	a[0] = 1;
	a[0] = 2;
	print(a[0]);
}
`)
	var out, errOut strings.Builder
	if code := effects([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on program with warnings, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "fn main") {
		t.Errorf("report missing despite warnings:\n%s", out.String())
	}
	diag := errOut.String()
	for _, want := range []string{"V002", "V007"} {
		if !strings.Contains(diag, want) {
			t.Errorf("stderr missing %q:\n%s", want, diag)
		}
	}
}

func TestEffectsHardErrorFails(t *testing.T) {
	path := writeProgram(t, "broken.ml", "fn main( {\n")
	var out, errOut strings.Builder
	if code := effects([]string{path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d on unparsable program, want 1", code)
	}
	if !strings.Contains(errOut.String(), "error:") {
		t.Errorf("hard error not reported:\n%s", errOut.String())
	}
}

func TestEffectsNoArgs(t *testing.T) {
	var out, errOut strings.Builder
	if code := effects(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit %d for no arguments, want 2", code)
	}
}
