// Command minivm runs a MiniLang program under the instrumented virtual
// machine, printing the program's output and optionally saving the emitted
// execution trace for later profiling with cmd/aprof.
//
// Usage:
//
//	minivm [-quantum N] [-max-steps N] [-trace FILE] [-trace-format binary|text] [-stats|-fmt|-disasm] program.ml
package main

import (
	"flag"
	"fmt"
	"os"

	"aprof/internal/trace"
	"aprof/internal/vm"
)

func main() {
	var (
		quantum  = flag.Int("quantum", 0, "basic blocks per scheduling slice (0 = default)")
		maxSteps = flag.Uint64("max-steps", 0, "instruction limit (0 = default)")
		traceOut = flag.String("trace", "", "write the execution trace to this file")
		traceFmt = flag.String("trace-format", "binary", "trace format: binary or text")
		stats    = flag.Bool("stats", false, "print execution statistics")
		optimize = flag.Bool("optimize", false, "run the bytecode optimizer before execution")
		format   = flag.Bool("fmt", false, "format the program to stdout instead of running it")
		disasm   = flag.Bool("disasm", false, "print the compiled bytecode instead of running")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minivm [flags] program.ml")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *format {
		out, err := vm.Format(string(src))
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}
	if *disasm {
		cp, err := vm.Compile(string(src))
		if err != nil {
			fatal(err)
		}
		if *optimize {
			cp.Optimize()
		}
		for _, fn := range cp.Funcs {
			fmt.Print(fn.Disassemble(cp))
		}
		return
	}
	res, err := vm.RunSource(string(src), vm.Options{
		Quantum:  *quantum,
		MaxSteps: *maxSteps,
		Stdout:   os.Stdout,
		Optimize: *optimize,
	})
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "threads: %d  steps: %d  basic blocks: %d  trace events: %d\n",
			res.Threads, res.Steps, res.BasicBlocks, res.Trace.Len())
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		switch *traceFmt {
		case "binary":
			err = trace.WriteBinary(f, res.Trace)
		case "text":
			err = trace.WriteText(f, res.Trace)
		default:
			err = fmt.Errorf("unknown trace format %q", *traceFmt)
		}
		if err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minivm:", err)
	os.Exit(1)
}
