// Command minivm runs a MiniLang program under the instrumented virtual
// machine, printing the program's output and optionally saving the emitted
// execution trace for later profiling with cmd/aprof.
//
// Usage:
//
//	minivm [-quantum N] [-max-steps N] [-trace FILE] [-trace-format binary|text] [-suppress] [-stats|-fmt|-disasm] program.ml
//	minivm vet program.ml...
//	minivm effects program.ml...
//
// The vet subcommand runs the static-analysis pipeline (parse, lint,
// compile, bytecode verification, optimize, re-verification, effect
// analysis) without executing the program, printing positioned
// file:line:col diagnostics. It exits 1 when any file has findings.
// Importing the analysis package also wires the bytecode verifier into
// every compile the run mode performs.
//
// The effects subcommand prints the per-function block/cost/effect report
// of the CFG effect analysis: each basic block's static step cost and its
// memory accesses with symbolic addresses, marking accesses the redundancy
// suppressor elides and blocks that bail out of aggregation. Diagnostics
// go to stderr; the report is informational, so only hard errors fail.
//
// -suppress runs the program with instrumentation redundancy suppression:
// per-block aggregated trace emission with provably redundant accesses
// elided. Profiler results over the trace are unchanged (see DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"aprof/internal/trace"
	"aprof/internal/vm"
	"aprof/internal/vm/analysis"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "vet" {
		os.Exit(vet(os.Args[2:], os.Stdout))
	}
	if len(os.Args) > 1 && os.Args[1] == "effects" {
		os.Exit(effects(os.Args[2:], os.Stdout, os.Stderr))
	}
	var (
		quantum  = flag.Int("quantum", 0, "basic blocks per scheduling slice (0 = default)")
		maxSteps = flag.Uint64("max-steps", 0, "instruction limit (0 = default)")
		traceOut = flag.String("trace", "", "write the execution trace to this file")
		traceFmt = flag.String("trace-format", "binary", "trace format: binary or text")
		stats    = flag.Bool("stats", false, "print execution statistics")
		optimize = flag.Bool("optimize", false, "run the bytecode optimizer before execution")
		format   = flag.Bool("fmt", false, "format the program to stdout instead of running it")
		disasm   = flag.Bool("disasm", false, "print the compiled bytecode instead of running")
		suppress = flag.Bool("suppress", false, "suppress provably redundant instrumentation (aggregated block events)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minivm [flags] program.ml")
		fmt.Fprintln(os.Stderr, "       minivm vet program.ml...")
		fmt.Fprintln(os.Stderr, "       minivm effects program.ml...")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *format {
		out, err := vm.Format(string(src))
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}
	if *disasm {
		cp, err := vm.Compile(string(src))
		if err != nil {
			fatal(err)
		}
		if *optimize {
			if _, err := cp.Optimize(); err != nil {
				fatal(err)
			}
		}
		for _, fn := range cp.Funcs {
			fmt.Print(fn.Disassemble(cp))
		}
		return
	}
	res, err := vm.RunSource(string(src), vm.Options{
		Quantum:  *quantum,
		MaxSteps: *maxSteps,
		Stdout:   os.Stdout,
		Optimize: *optimize,
		Suppress: *suppress,
	})
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "threads: %d  steps: %d  basic blocks: %d  trace events: %d\n",
			res.Threads, res.Steps, res.BasicBlocks, res.Trace.Len())
		if s := res.Suppress; s != nil {
			fmt.Fprintf(os.Stderr, "suppress: mem ops: %d  elided: %d (static %d, dynamic %d, coalesced %d)  blocks: %d aggregated, %d direct, %d bailed (sys)  overflows: %d\n",
				s.MemOps, s.Elided(), s.ElidedStatic, s.ElidedDynamic, s.Coalesced,
				s.BlocksAggregated, s.BlocksDirect, s.BlocksBailedSys, s.Overflows)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		switch *traceFmt {
		case "binary":
			err = trace.WriteBinary(f, res.Trace)
		case "text":
			err = trace.WriteText(f, res.Trace)
		default:
			err = fmt.Errorf("unknown trace format %q", *traceFmt)
		}
		if err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minivm:", err)
	os.Exit(1)
}

// vet statically checks each file and prints positioned diagnostics. The
// exit status is 0 when every file is clean, 1 when any file has findings
// or hard errors, 2 on usage errors.
func vet(files []string, out io.Writer) int {
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "usage: minivm vet program.ml...")
		return 2
	}
	exit := 0
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "minivm: vet:", err)
			return 2
		}
		diags, err := analysis.Check(string(src))
		for _, d := range diags {
			fmt.Fprintf(out, "%s:%s\n", file, d)
			exit = 1
		}
		if err != nil {
			printHardError(out, file, err)
			exit = 1
		}
	}
	return exit
}

// effects prints the per-function effect-analysis report for each file.
// Diagnostics (including V007 dead stores the analysis itself finds) go to
// errOut; they do not affect the exit status — the report is informational
// and a program with warnings still gets its full report. Only hard errors
// (syntax, compile, verifier) exit 1; usage errors exit 2.
func effects(files []string, out, errOut io.Writer) int {
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "usage: minivm effects program.ml...")
		return 2
	}
	exit := 0
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "minivm: effects:", err)
			return 2
		}
		pe, diags, err := analysis.Effects(string(src))
		for _, d := range diags {
			fmt.Fprintf(errOut, "%s:%s\n", file, d)
		}
		if err != nil {
			printHardError(errOut, file, err)
			exit = 1
			continue
		}
		if len(files) > 1 {
			fmt.Fprintf(out, "== %s\n", file)
		}
		fmt.Fprint(out, pe.Report())
	}
	return exit
}

// printHardError renders a hard failure (syntax, compile, verifier) with
// the file prepended to the position where one is known.
func printHardError(out io.Writer, file string, err error) {
	switch e := err.(type) {
	case *vm.SyntaxError:
		fmt.Fprintf(out, "%s:%s: error: %s\n", file, e.Pos, e.Msg)
	default:
		fmt.Fprintf(out, "%s: error: %v\n", file, err)
	}
}
