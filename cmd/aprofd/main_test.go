package main

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"aprof"
	"aprof/internal/trace"
)

func buildBinary(t *testing.T, dir, name, srcPkg string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, srcPkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", srcPkg, err, out)
	}
	return bin
}

// waitLine scans lines until match returns a result, with a deadline.
func waitLine(t *testing.T, lines <-chan string, what string, match func(string) (string, bool)) string {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("daemon exited before printing %s", what)
			}
			if v, ok := match(line); ok {
				return v
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		}
	}
}

// TestDaemonEndToEnd drives the real binaries: aprofd comes up, aprofsend
// uploads a trace, the profile is fetched over the debug HTTP endpoint and
// must be byte-identical to the offline pipeline, and SIGTERM drains the
// daemon to a clean exit.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the aprofd and aprofsend binaries")
	}
	dir := t.TempDir()
	aprofd := buildBinary(t, dir, "aprofd", ".")
	aprofsend := buildBinary(t, dir, "aprofsend", "../aprofsend")

	tr := trace.Random(trace.RandomConfig{Seed: 40, Ops: 1500, Threads: 3})
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	tracePath := filepath.Join(dir, "trace.bin")
	if err := os.WriteFile(tracePath, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	ps, err := aprof.ProfileTraceStreamContext(context.Background(), bytes.NewReader(enc), aprof.DefaultConfig(), aprof.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf bytes.Buffer
	if err := aprof.WriteProfiles(&wantBuf, ps); err != nil {
		t.Fatal(err)
	}
	want := wantBuf.Bytes()

	resultDir := filepath.Join(dir, "results")
	daemon := exec.Command(aprofd,
		"-addr", "127.0.0.1:0",
		"-debug-addr", "127.0.0.1:0",
		"-checkpoint-dir", filepath.Join(dir, "ckpt"),
		"-result-dir", resultDir,
	)
	stderr, err := daemon.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill()

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()

	debugAddr := waitLine(t, lines, "the debug-server line", func(line string) (string, bool) {
		_, rest, ok := strings.Cut(line, "debug server on http://")
		if !ok {
			return "", false
		}
		return strings.TrimSuffix(rest, "/profiles/"), true
	})
	addr := waitLine(t, lines, "the listening line", func(line string) (string, bool) {
		_, rest, ok := strings.Cut(line, "listening on ")
		return rest, ok
	})
	go func() { // keep draining so the daemon never blocks on stderr
		for range lines {
		}
	}()

	send := exec.Command(aprofsend, "-addr", addr, "-session", "e2e", tracePath)
	out, err := send.CombinedOutput()
	if err != nil {
		t.Fatalf("aprofsend: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "complete") {
		t.Fatalf("aprofsend output: %s", out)
	}

	resp, err := http.Get("http://" + debugAddr + "/profiles/e2e")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, want) {
		t.Fatalf("HTTP profile: status %d, matches offline pipeline: %v", resp.StatusCode, bytes.Equal(body, want))
	}
	onDisk, err := os.ReadFile(filepath.Join(resultDir, "e2e.json"))
	if err != nil || !bytes.Equal(onDisk, want) {
		t.Fatalf("result-dir profile: %v, matches: %v", err, bytes.Equal(onDisk, want))
	}

	// SIGTERM with nothing in flight: a prompt, clean drain.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon drain exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

// startDaemon launches one aprofd and reports its TCP and debug addresses.
func startDaemon(t *testing.T, bin string, args ...string) (proc *exec.Cmd, addr, debugAddr string) {
	t.Helper()
	daemon := exec.Command(bin, args...)
	stderr, err := daemon.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { daemon.Process.Kill() })

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	debugAddr = waitLine(t, lines, "the debug-server line", func(line string) (string, bool) {
		_, rest, ok := strings.Cut(line, "debug server on http://")
		if !ok {
			return "", false
		}
		return strings.TrimSuffix(rest, "/profiles/"), true
	})
	addr = waitLine(t, lines, "the listening line", func(line string) (string, bool) {
		_, rest, ok := strings.Cut(line, "listening on ")
		return rest, ok
	})
	go func() { // keep draining so the daemon never blocks on stderr
		for range lines {
		}
	}()
	return daemon, addr, debugAddr
}

// TestClusterEndToEnd drives a three-binary cluster: one node is
// SIGKILLed before the upload, aprofsend -cluster routes around it by
// ring-successor failover, and a surviving node's fan-out endpoint serves
// the profile cluster-wide — byte-identical to the offline pipeline, with
// the index honestly flagged partial while a peer is dead.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the aprofd and aprofsend binaries")
	}
	dir := t.TempDir()
	aprofd := buildBinary(t, dir, "aprofd", ".")
	aprofsend := buildBinary(t, dir, "aprofsend", "../aprofsend")

	tr := trace.Random(trace.RandomConfig{Seed: 41, Ops: 1200, Threads: 3})
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	tracePath := filepath.Join(dir, "trace.bin")
	if err := os.WriteFile(tracePath, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	ps, err := aprof.ProfileTraceStreamContext(context.Background(), bytes.NewReader(enc), aprof.DefaultConfig(), aprof.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf bytes.Buffer
	if err := aprof.WriteProfiles(&wantBuf, ps); err != nil {
		t.Fatal(err)
	}
	want := wantBuf.Bytes()

	// All nodes share one checkpoint directory — the stand-in for the
	// shared volume that makes a migration a resume.
	ckpt := filepath.Join(dir, "ckpt")
	baseArgs := func() []string {
		return []string{"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0", "-checkpoint-dir", ckpt}
	}
	a, addrA, _ := startDaemon(t, aprofd, baseArgs()...)
	_, addrB, dbgB := startDaemon(t, aprofd, baseArgs()...)
	_, addrC, dbgC := startDaemon(t, aprofd, append(baseArgs(), "-cluster-peers", dbgB)...)

	// Node A dies hard before the upload: failover must route around it.
	if err := a.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	a.Wait()

	send := exec.Command(aprofsend,
		"-cluster", strings.Join([]string{addrA, addrB, addrC}, ","),
		"-session", "clustered", "-backoff", "10ms", "-v", tracePath)
	out, err := send.CombinedOutput()
	if err != nil {
		t.Fatalf("aprofsend -cluster: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "complete") {
		t.Fatalf("aprofsend output: %s", out)
	}

	// Node C's fan-out serves the profile wherever it landed (locally or
	// via its peer B).
	resp, err := http.Get("http://" + dbgC + "/profiles/clustered")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, want) {
		t.Fatalf("cluster profile: status %d, matches offline pipeline: %v", resp.StatusCode, bytes.Equal(body, want))
	}
	resp, err = http.Get("http://" + dbgC + "/profiles/")
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(idx), `"clustered"`) {
		t.Fatalf("cluster index is missing the session: %s", idx)
	}
}
