package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"aprof/internal/trace"
)

// TestStoreEndToEnd drives the full repository path with the real
// binaries: aprofd -store persists two uploaded sessions into a profile
// repository; a restarted daemon serves them from the store alone;
// aprofdiff -store produces byte-identical output (and the same exit
// code) as aprofdiff over the flat -result-dir files; and aprofstore
// ls/stats/gc/check manage the same repository.
func TestStoreEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the aprofd, aprofsend, aprofdiff and aprofstore binaries")
	}
	dir := t.TempDir()
	aprofd := buildBinary(t, dir, "aprofd", ".")
	aprofsend := buildBinary(t, dir, "aprofsend", "../aprofsend")
	aprofdiff := buildBinary(t, dir, "aprofdiff", "../aprofdiff")
	aprofstore := buildBinary(t, dir, "aprofstore", "../aprofstore")

	writeTrace := func(name string, seed int64) string {
		tr := trace.Random(trace.RandomConfig{Seed: seed, Ops: 1200, Threads: 3})
		var buf bytes.Buffer
		if err := trace.WriteBinary(&buf, tr); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldTrace := writeTrace("old.bin", 50)
	newTrace := writeTrace("new.bin", 51)

	resultDir := filepath.Join(dir, "results")
	storeDir := filepath.Join(dir, "store")
	daemon, addr, _ := startDaemon(t, aprofd,
		"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0",
		"-checkpoint-dir", filepath.Join(dir, "ckpt"),
		"-result-dir", resultDir, "-store", storeDir)

	for sid, tracePath := range map[string]string{"run-old": oldTrace, "run-new": newTrace} {
		out, err := exec.Command(aprofsend, "-addr", addr, "-session", sid, tracePath).CombinedOutput()
		if err != nil {
			t.Fatalf("aprofsend %s: %v\n%s", sid, err, out)
		}
	}

	// Drain the daemon; the store must hold both sessions durably.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitExit(t, daemon, "first daemon")

	// A restarted daemon with ONLY the store (no -result-dir) serves the
	// sessions over /profiles/, byte-identical to the flat files.
	daemon2, _, dbg2 := startDaemon(t, aprofd,
		"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0", "-store", storeDir)
	for _, sid := range []string{"run-old", "run-new"} {
		flat, err := os.ReadFile(filepath.Join(resultDir, sid+".json"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get("http://" + dbg2 + "/profiles/" + sid)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !bytes.Equal(body, flat) {
			t.Fatalf("restarted daemon /profiles/%s: status %d, matches flat file: %v",
				sid, resp.StatusCode, bytes.Equal(body, flat))
		}
	}
	daemon2.Process.Signal(syscall.SIGTERM)
	waitExit(t, daemon2, "second daemon")

	// aprofdiff over the store must match aprofdiff over the flat files:
	// same report bytes, same exit code.
	flatCmd := exec.Command(aprofdiff,
		filepath.Join(resultDir, "run-old.json"), filepath.Join(resultDir, "run-new.json"))
	flatOut, flatErr := flatCmd.Output()
	storeCmd := exec.Command(aprofdiff, "-store", storeDir, "run-old", "run-new")
	storeOut, storeErr := storeCmd.Output()
	if !bytes.Equal(flatOut, storeOut) {
		t.Fatalf("aprofdiff output diverges between flat files and store:\n--- flat ---\n%s\n--- store ---\n%s", flatOut, storeOut)
	}
	if exitCode(flatErr) != exitCode(storeErr) {
		t.Fatalf("aprofdiff exit codes diverge: flat %d, store %d", exitCode(flatErr), exitCode(storeErr))
	}

	// aprofstore manages the same repository: ls shows both sessions, gc
	// runs clean, and check verifies everything with exit 0.
	lsOut, err := exec.Command(aprofstore, "ls", storeDir).CombinedOutput()
	if err != nil {
		t.Fatalf("aprofstore ls: %v\n%s", err, lsOut)
	}
	for _, sid := range []string{"run-old", "run-new"} {
		if !strings.Contains(string(lsOut), sid) {
			t.Fatalf("aprofstore ls is missing %s:\n%s", sid, lsOut)
		}
	}
	if out, err := exec.Command(aprofstore, "stats", storeDir).CombinedOutput(); err != nil {
		t.Fatalf("aprofstore stats: %v\n%s", err, out)
	}
	if out, err := exec.Command(aprofstore, "gc", storeDir).CombinedOutput(); err != nil {
		t.Fatalf("aprofstore gc: %v\n%s", err, out)
	}
	out, err := exec.Command(aprofstore, "check", storeDir).CombinedOutput()
	if err != nil {
		t.Fatalf("aprofstore check: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "no errors") {
		t.Fatalf("aprofstore check output: %s", out)
	}
}

// waitExit waits for a daemon to exit cleanly within the e2e deadline.
func waitExit(t *testing.T, daemon *exec.Cmd, what string) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%s exit: %v", what, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("%s did not exit after SIGTERM", what)
	}
}

// exitCode maps an exec error to the process exit code (0 on nil).
func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	return -1
}
