// Command aprofd is the resilient trace-ingestion daemon: it accepts APT2
// trace streams over TCP (one profiling session per connection, keyed by a
// client-chosen session id) and serves the finished profiles over the
// debug HTTP endpoint.
//
// Usage:
//
//	aprofd -addr localhost:7071 [-checkpoint-dir DIR] [-result-dir DIR] [-store DIR]
//	       [-debug-addr localhost:6060] [-max-sessions N] [-metric drms|rms|external-only]
//	       [-cluster-peers HOST:PORT,...] [-max-decode-latency D] [-max-memory-bytes N]
//
// Sessions are panic-isolated and deadline-guarded; beyond -max-sessions
// the daemon sheds load with an explicit busy response instead of
// queueing. With -checkpoint-dir every session is durable: interrupted
// uploads resume from the last acknowledged batch, and SIGINT/SIGTERM
// drains gracefully — stop accepting, checkpoint everything in flight,
// exit — so a restarted daemon loses nothing. A second signal aborts hard.
//
// With -store, completed profiles are persisted into a content-addressed
// profile repository (chunked, deduplicated, checksummed, crash-safe) and
// /profiles/ serves sessions from it across restarts. Manage the store
// with the aprofstore command.
//
// As a cluster member, -cluster-peers lists the other nodes' debug HTTP
// addresses: /profiles/ then serves the merged cluster-wide view instead
// of only this node's share. -max-decode-latency and -max-memory-bytes
// turn the fixed session cap into an adaptive one that sheds down toward
// -min-sessions while the node is measurably overloaded.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aprof"
	"aprof/internal/cluster"
	"aprof/internal/obs"
	"aprof/internal/repo"
	"aprof/internal/repo/backend"
	"aprof/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:7071", "TCP address to accept trace streams on")
		debugAddr = flag.String("debug-addr", "", "serve metrics, pprof and /profiles/ on this HTTP address")
		ckptDir   = flag.String("checkpoint-dir", "", "directory for per-session checkpoints (enables resume and drain durability)")
		resultDir = flag.String("result-dir", "", "directory to write completed profiles to as <session>.json")
		storeDir  = flag.String("store", "", "profile repository directory (content-addressed, deduplicated, crash-safe); created if missing")
		metric    = flag.String("metric", "drms", "input metric: drms, rms, or external-only")

		maxSessions = flag.Int("max-sessions", server.DefaultMaxSessions, "concurrent session cap; excess connections are shed with a busy response")
		idle        = flag.Duration("idle-timeout", server.DefaultIdleTimeout, "per-read client deadline; stalled clients are cut off")
		writeT      = flag.Duration("write-timeout", server.DefaultWriteTimeout, "per-write client deadline")
		maxBytes    = flag.Int64("max-conn-bytes", 0, "per-connection byte cap (0 = unlimited)")
		maxEvents   = flag.Uint64("max-session-events", 0, "per-session delivered-event cap (0 = unlimited)")
		batch       = flag.Int("batch", 0, "pipeline batch size (0 = default)")
		ckptEvery   = flag.Int("checkpoint-every", 0, "events between periodic checkpoints (0 = default)")
		shards      = flag.Int("shards", 1, "profile each session on this many per-thread shards (output is byte-identical to -shards 1)")
		drainT      = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget before in-flight connections are force-closed")

		clusterPeers = flag.String("cluster-peers", "", "comma-separated debug HTTP addresses of the other cluster nodes; /profiles/ serves the merged cluster view")
		minSessions  = flag.Int("min-sessions", 1, "adaptive admission floor (with -max-decode-latency or -max-memory-bytes)")
		maxDecodeLat = flag.Duration("max-decode-latency", 0, "shed sessions while batch-decode latency exceeds this (0 = fixed -max-sessions cap)")
		maxMemBytes  = flag.Int64("max-memory-bytes", 0, "shed sessions while the heap estimate exceeds this (0 = fixed -max-sessions cap)")
	)
	flag.Parse()

	cfg, err := configFor(*metric)
	if err != nil {
		fatal(err)
	}
	for _, dir := range []string{*ckptDir, *resultDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
	}

	reg := obs.NewRegistry()
	logger := log.New(os.Stderr, "", log.LstdFlags)

	var store *repo.Repository
	if *storeDir != "" {
		be, err := backend.OpenLocal(*storeDir)
		if err != nil {
			fatal(err)
		}
		store, err = repo.OpenOrInit(be, repo.Options{Obs: reg, Logf: logger.Printf})
		if err != nil {
			fatal(err)
		}
		defer store.Close()
		logger.Printf("aprofd: profile store at %s", *storeDir)
	}

	s := server.New(server.Options{
		MaxSessions: *maxSessions,
		Admission: server.AdmissionOptions{
			MinSessions:      *minSessions,
			MaxDecodeLatency: *maxDecodeLat,
			MaxMemoryBytes:   *maxMemBytes,
		},
		IdleTimeout:      *idle,
		WriteTimeout:     *writeT,
		MaxConnBytes:     *maxBytes,
		MaxSessionEvents: *maxEvents,
		CheckpointDir:    *ckptDir,
		ResultDir:        *resultDir,
		Store:            store,
		Config:           cfg,
		BatchSize:        *batch,
		CheckpointEvery:  *ckptEvery,
		Shards:           *shards,
		Obs:              reg,
		Logf:             logger.Printf,
	})

	if *debugAddr != "" {
		// With peers, /profiles/ fans out to the whole cluster; the merged
		// document is a superset of the single-node shape, so consumers need
		// not care which node they asked.
		var profiles http.Handler = s.ProfilesHandler()
		if *clusterPeers != "" {
			peers := strings.Split(*clusterPeers, ",")
			for i := range peers {
				peers[i] = strings.TrimSpace(peers[i])
			}
			profiles = cluster.NewFanout(s, peers, 0).Handler()
			logger.Printf("aprofd: cluster fan-out over %d peers", len(peers))
		}
		dbg, err := obs.ServeDebugMux(*debugAddr, reg, func(mux *http.ServeMux) {
			mux.Handle("/profiles/", profiles)
		})
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		logger.Printf("aprofd: debug server on http://%s/profiles/", dbg.Addr())
	}

	if err := s.Start(*addr); err != nil {
		fatal(err)
	}
	logger.Printf("aprofd: listening on %s", s.Addr())

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	sig := <-sigs
	logger.Printf("aprofd: %v: draining (checkpointing in-flight sessions, %v budget; signal again to abort)", sig, *drainT)

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), *drainT)
		defer cancel()
		drainDone <- s.Shutdown(ctx)
	}()
	select {
	case err := <-drainDone:
		if err != nil {
			logger.Printf("aprofd: drain incomplete, connections force-closed: %v", err)
			os.Exit(1)
		}
		logger.Printf("aprofd: drained cleanly")
	case sig = <-sigs:
		logger.Printf("aprofd: %v: aborting", sig)
		s.Abort()
		s.Wait()
		os.Exit(1)
	}
}

func configFor(metric string) (aprof.Config, error) {
	switch strings.ToLower(metric) {
	case "drms":
		return aprof.DefaultConfig(), nil
	case "rms":
		return aprof.RMSOnlyConfig(), nil
	case "external-only", "external":
		return aprof.ExternalOnlyConfig(), nil
	default:
		return aprof.Config{}, fmt.Errorf("unknown metric %q (want drms, rms, or external-only)", metric)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aprofd:", err)
	os.Exit(1)
}
