// Command aprofd is the resilient trace-ingestion daemon: it accepts APT2
// trace streams over TCP (one profiling session per connection, keyed by a
// client-chosen session id) and serves the finished profiles over the
// debug HTTP endpoint.
//
// Usage:
//
//	aprofd -addr localhost:7071 [-checkpoint-dir DIR] [-result-dir DIR] [-store DIR]
//	       [-debug-addr localhost:6060] [-max-sessions N] [-metric drms|rms|external-only]
//	       [-cluster-peers HOST:PORT,...] [-max-decode-latency D] [-max-memory-bytes N]
//
// Sessions are panic-isolated and deadline-guarded; beyond -max-sessions
// the daemon sheds load with an explicit busy response instead of
// queueing. With -checkpoint-dir every session is durable: interrupted
// uploads resume from the last acknowledged batch, and SIGINT/SIGTERM
// drains gracefully — stop accepting, checkpoint everything in flight,
// exit — so a restarted daemon loses nothing. A second signal aborts hard.
//
// With -store, completed profiles are persisted into a content-addressed
// profile repository (chunked, deduplicated, checksummed, crash-safe) and
// /profiles/ serves sessions from it across restarts. Manage the store
// with the aprofstore command.
//
// As a cluster member, -cluster-peers lists the other nodes' debug HTTP
// addresses: /profiles/ then serves the merged cluster-wide view instead
// of only this node's share. -max-decode-latency and -max-memory-bytes
// turn the fixed session cap into an adaptive one that sheds down toward
// -min-sessions while the node is measurably overloaded.
//
// With -replicate-peers (the full membership's ingest addresses, this
// node included) the cluster needs no shared disk at all: each session's
// checkpoint is pushed to its ring successors before any batch is
// acknowledged, failover nodes recover checkpoints from the replica set,
// and the profile store anti-entropy loop (-sync-every) pulls every
// peer's missing blobs so /profiles/ serves every acked session even
// after a node's disk is lost. Replication shares the -addr port.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"aprof"
	"aprof/internal/cluster"
	"aprof/internal/obs"
	"aprof/internal/replica"
	"aprof/internal/repo"
	"aprof/internal/repo/backend"
	"aprof/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:7071", "TCP address to accept trace streams on")
		debugAddr = flag.String("debug-addr", "", "serve metrics, pprof and /profiles/ on this HTTP address")
		ckptDir   = flag.String("checkpoint-dir", "", "directory for per-session checkpoints (enables resume and drain durability)")
		resultDir = flag.String("result-dir", "", "directory to write completed profiles to as <session>.json")
		storeDir  = flag.String("store", "", "profile repository directory (content-addressed, deduplicated, crash-safe); created if missing")
		metric    = flag.String("metric", "drms", "input metric: drms, rms, or external-only")

		maxSessions = flag.Int("max-sessions", server.DefaultMaxSessions, "concurrent session cap; excess connections are shed with a busy response")
		idle        = flag.Duration("idle-timeout", server.DefaultIdleTimeout, "per-read client deadline; stalled clients are cut off")
		writeT      = flag.Duration("write-timeout", server.DefaultWriteTimeout, "per-write client deadline")
		maxBytes    = flag.Int64("max-conn-bytes", 0, "per-connection byte cap (0 = unlimited)")
		maxEvents   = flag.Uint64("max-session-events", 0, "per-session delivered-event cap (0 = unlimited)")
		batch       = flag.Int("batch", 0, "pipeline batch size (0 = default)")
		ckptEvery   = flag.Int("checkpoint-every", 0, "events between periodic checkpoints (0 = default)")
		shards      = flag.Int("shards", 1, "profile each session on this many per-thread shards (output is byte-identical to -shards 1)")
		drainT      = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget before in-flight connections are force-closed")

		clusterPeers = flag.String("cluster-peers", "", "comma-separated debug HTTP addresses of the other cluster nodes; /profiles/ serves the merged cluster view")
		replPeers    = flag.String("replicate-peers", "", "comma-separated ingest addresses of ALL cluster members (this node included); enables peer-to-peer checkpoint replication and store sync — no shared disk needed")
		replSelf     = flag.String("replicate-self", "", "this node's own address within -replicate-peers (default -addr)")
		replicas     = flag.Int("replicas", replica.DefaultReplicas, "checkpoint copies per session, this node's included (with -replicate-peers)")
		replicaDir   = flag.String("replica-dir", "", "directory for checkpoints received from peers (default <store>/replica; with -replicate-peers)")
		syncEvery    = flag.Duration("sync-every", 30*time.Second, "store anti-entropy interval: pull missing blobs from every replication peer (0 disables; with -replicate-peers and -store)")
		minSessions  = flag.Int("min-sessions", 1, "adaptive admission floor (with -max-decode-latency or -max-memory-bytes)")
		maxDecodeLat = flag.Duration("max-decode-latency", 0, "shed sessions while batch-decode latency exceeds this (0 = fixed -max-sessions cap)")
		maxMemBytes  = flag.Int64("max-memory-bytes", 0, "shed sessions while the heap estimate exceeds this (0 = fixed -max-sessions cap)")
	)
	flag.Parse()

	cfg, err := configFor(*metric)
	if err != nil {
		fatal(err)
	}
	// Replication-dependent flags without replication are a configuration
	// mistake, not a silent default; and a cluster member with neither a
	// checkpoint dir nor replication would fail over without durability —
	// the old unconditional shared-dir assumption, now an explicit error.
	if *replPeers == "" {
		if *replSelf != "" || *replicaDir != "" {
			fatal(fmt.Errorf("-replicate-self/-replica-dir need -replicate-peers"))
		}
		if *clusterPeers != "" && *ckptDir == "" {
			fatal(fmt.Errorf("a cluster member needs session durability for failover: set -checkpoint-dir (shared disk) or -replicate-peers (peer-to-peer replication)"))
		}
	}
	for _, dir := range []string{*ckptDir, *resultDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
	}

	reg := obs.NewRegistry()
	logger := log.New(os.Stderr, "", log.LstdFlags)

	var store *repo.Repository
	var storeBackend backend.Backend
	if *storeDir != "" {
		be, err := backend.OpenLocal(*storeDir)
		if err != nil {
			fatal(err)
		}
		storeBackend = be
		store, err = repo.OpenOrInit(be, repo.Options{Obs: reg, Logf: logger.Printf})
		if err != nil {
			fatal(err)
		}
		defer store.Close()
		logger.Printf("aprofd: profile store at %s", *storeDir)
	}

	var replicaNode *replica.Node
	var replPeerList []string
	var replSelfAddr string
	if *replPeers != "" {
		peers := splitAddrs(*replPeers)
		self := *replSelf
		if self == "" {
			self = *addr
		}
		replPeerList, replSelfAddr = peers, self
		dir := *replicaDir
		if dir == "" && *storeDir != "" {
			dir = filepath.Join(*storeDir, "replica")
		}
		if dir == "" {
			logger.Printf("aprofd: warning: no -replica-dir and no -store; checkpoints received from peers are held in memory only")
		}
		node, err := replica.NewNode(replica.Options{
			Self:     self,
			Peers:    peers,
			Replicas: *replicas,
			Dir:      dir,
			Backend:  storeBackend,
			Obs:      reg,
			Logf:     logger.Printf,
		})
		if err != nil {
			fatal(err)
		}
		defer node.Close()
		replicaNode = node
		logger.Printf("aprofd: replicating checkpoints to %d-node ring as %s (R=%d)", len(peers), self, *replicas)
	}

	srvOpts := server.Options{
		MaxSessions: *maxSessions,
		Admission: server.AdmissionOptions{
			MinSessions:      *minSessions,
			MaxDecodeLatency: *maxDecodeLat,
			MaxMemoryBytes:   *maxMemBytes,
		},
		IdleTimeout:      *idle,
		WriteTimeout:     *writeT,
		MaxConnBytes:     *maxBytes,
		MaxSessionEvents: *maxEvents,
		CheckpointDir:    *ckptDir,
		ResultDir:        *resultDir,
		Store:            store,
		Config:           cfg,
		BatchSize:        *batch,
		CheckpointEvery:  *ckptEvery,
		Shards:           *shards,
		Obs:              reg,
		Logf:             logger.Printf,
	}
	if replicaNode != nil {
		// Assigned conditionally so a nil *Node never becomes a non-nil
		// ReplicaService interface.
		srvOpts.Replica = replicaNode
	}
	s := server.New(srvOpts)

	if *debugAddr != "" {
		// With peers, /profiles/ fans out to the whole cluster; the merged
		// document is a superset of the single-node shape, so consumers need
		// not care which node they asked.
		var profiles http.Handler = s.ProfilesHandler()
		if *clusterPeers != "" {
			peers := strings.Split(*clusterPeers, ",")
			for i := range peers {
				peers[i] = strings.TrimSpace(peers[i])
			}
			profiles = cluster.NewFanout(s, peers, 0).Handler()
			logger.Printf("aprofd: cluster fan-out over %d peers", len(peers))
		}
		dbg, err := obs.ServeDebugMux(*debugAddr, reg, func(mux *http.ServeMux) {
			mux.Handle("/profiles/", profiles)
		})
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		logger.Printf("aprofd: debug server on http://%s/profiles/", dbg.Addr())
	}

	if err := s.Start(*addr); err != nil {
		fatal(err)
	}
	logger.Printf("aprofd: listening on %s", s.Addr())

	if replicaNode != nil && store != nil && *syncEvery > 0 {
		stop := startSyncLoop(store, replSelfAddr, replPeerList, *syncEvery, logger.Printf)
		defer stop()
		logger.Printf("aprofd: store anti-entropy every %v", *syncEvery)
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	sig := <-sigs
	logger.Printf("aprofd: %v: draining (checkpointing in-flight sessions, %v budget; signal again to abort)", sig, *drainT)

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), *drainT)
		defer cancel()
		drainDone <- s.Shutdown(ctx)
	}()
	select {
	case err := <-drainDone:
		if err != nil {
			logger.Printf("aprofd: drain incomplete, connections force-closed: %v", err)
			os.Exit(1)
		}
		logger.Printf("aprofd: drained cleanly")
	case sig = <-sigs:
		logger.Printf("aprofd: %v: aborting", sig)
		s.Abort()
		s.Wait()
		os.Exit(1)
	}
}

// startSyncLoop runs store anti-entropy in the background: every interval,
// pull whatever blobs and sessions each replication peer has that this
// store lacks. Pull-only, so a partition mid-sync degrades to "retry next
// round" — never corruption. The returned stop func waits for the loop to
// exit and closes the peer connections.
func startSyncLoop(store *repo.Repository, self string, peers []string, every time.Duration, logf func(string, ...any)) func() {
	remotes := make([]*backend.Peer, 0, len(peers))
	for _, p := range peers {
		if p == self {
			continue
		}
		remotes = append(remotes, backend.NewPeer(p, backend.PeerOptions{}))
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
			}
			for _, r := range remotes {
				stats, err := store.Sync(r)
				if err != nil {
					logf("aprofd: sync from %s: %v", r.Addr(), err)
					continue
				}
				if stats.PacksPulled > 0 || stats.RootWritten {
					logf("aprofd: sync from %s: %s", r.Addr(), stats)
				}
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
		for _, r := range remotes {
			r.Close()
		}
	}
}

// splitAddrs splits a comma-separated address list, trimming whitespace
// and dropping empties.
func splitAddrs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func configFor(metric string) (aprof.Config, error) {
	switch strings.ToLower(metric) {
	case "drms":
		return aprof.DefaultConfig(), nil
	case "rms":
		return aprof.RMSOnlyConfig(), nil
	case "external-only", "external":
		return aprof.ExternalOnlyConfig(), nil
	default:
		return aprof.Config{}, fmt.Errorf("unknown metric %q (want drms, rms, or external-only)", metric)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aprofd:", err)
	os.Exit(1)
}
