// Command experiments regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	experiments [-scale quick|full] [-out DIR] [-parallel N] [-list] [name ...]
//
// With no names (or "all"), every experiment runs. With -out, each
// experiment's rendering is written to DIR/<name>.txt instead of stdout.
// Experiments run concurrently on a worker pool (-parallel, default
// GOMAXPROCS); outputs are still emitted in the order the experiments were
// named, and parallel execution never changes any table or figure.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"aprof/internal/experiments"
	"aprof/internal/obs"
)

func main() {
	var (
		scaleFlag = flag.String("scale", "quick", "experiment scale: quick or full")
		outDir    = flag.String("out", "", "write each experiment to DIR/<name>.txt")
		asJSON    = flag.Bool("json", false, "emit JSON instead of text")
		list      = flag.Bool("list", false, "list available experiments and exit")
		parallel  = flag.Int("parallel", 0, "experiments run concurrently (0 = GOMAXPROCS)")
		obsOut    = flag.String("obs-summary", "", "write a JSON run summary (per-experiment wall time) to this path")
	)
	flag.Parse()

	if *list {
		for _, d := range experiments.Drivers() {
			fmt.Printf("%-8s %s\n", d.Name, d.Description)
		}
		return
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fatal(fmt.Errorf("unknown scale %q (want quick or full)", *scaleFlag))
	}

	names := flag.Args()
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		names = nil
		for _, d := range experiments.Drivers() {
			names = append(names, d.Name)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}
	for _, name := range names {
		if _, ok := experiments.DriverByName(name); !ok {
			fatal(fmt.Errorf("unknown experiment %q (use -list)", name))
		}
	}
	var reg *obs.Registry
	if *obsOut != "" {
		reg = obs.NewRegistry()
	}
	fmt.Fprintf(os.Stderr, "running %d experiments...\n", len(names))
	start := time.Now()
	results, err := experiments.RunDriversObs(context.Background(), names, scale, *parallel, reg)
	if err != nil {
		fatal(err)
	}
	if reg != nil {
		summary := obs.NewRunSummary(reg, time.Since(start).Milliseconds())
		if err := summary.WriteFile(*obsOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *obsOut)
	}
	for i, name := range names {
		res := results[i]
		var payload []byte
		ext := ".txt"
		if *asJSON {
			var err error
			payload, err = res.JSON()
			if err != nil {
				fatal(err)
			}
			ext = ".json"
		} else {
			payload = []byte(res.String())
		}
		if *outDir == "" {
			fmt.Printf("%s\n", payload)
			continue
		}
		path := filepath.Join(*outDir, name+ext)
		if err := os.WriteFile(path, payload, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
