// Command aprofstore manages an aprofd profile repository: the
// content-addressed, deduplicated, checksummed store that `aprofd -store`
// persists completed profiles into.
//
// Usage:
//
//	aprofstore init DIR     initialize a new repository
//	aprofstore ls DIR       list stored sessions
//	aprofstore stats DIR    population and dedup statistics
//	aprofstore gc DIR       delete unreferenced data, repack, refresh index
//	aprofstore check DIR    verify every pack, blob and snapshot (exit 1 on damage)
//
// check re-reads everything from disk and trusts nothing cached: framing,
// header CRCs, every blob's CRC-32 and SHA-256, and that every referenced
// manifest and chunk is servable. Warnings (quarantined wreckage, stale
// index caches) do not fail it; a lost or unservable referenced blob does.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"aprof/internal/repo"
	"aprof/internal/repo/backend"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd, rest := flag.Arg(0), flag.Args()[1:]
	oneDir := func() string {
		if len(rest) != 1 {
			usage()
			os.Exit(2)
		}
		return rest[0]
	}

	var err error
	switch cmd {
	case "init":
		err = runInit(oneDir())
	case "ls":
		err = withRepo(oneDir(), runLs)
	case "stats":
		err = withRepo(oneDir(), runStats)
	case "gc":
		err = runGCCmd(rest)
	case "check":
		err = withRepo(oneDir(), runCheck)
	default:
		fmt.Fprintf(os.Stderr, "aprofstore: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aprofstore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: aprofstore COMMAND [flags] DIR

Commands:
  init    initialize a new profile repository in DIR
  ls      list stored sessions
  stats   population and dedup statistics
  gc      delete unreferenced data, repack partially-live packs
          -keep-last N   keep at most N versions per session, head included
                         (default 1: heads only; 0: keep every recorded version)
          -max-age D     also drop retained versions older than D (e.g. 720h; 0: no age limit)
  check   full integrity verification (exit 1 on damage)
`)
}

func runInit(dir string) error {
	be, err := backend.OpenLocal(dir)
	if err != nil {
		return err
	}
	if err := repo.Init(be); err != nil {
		return err
	}
	fmt.Printf("initialized empty profile repository in %s\n", dir)
	return nil
}

func withRepo(dir string, fn func(*repo.Repository) error) error {
	be, err := backend.OpenLocal(dir)
	if err != nil {
		return err
	}
	r, err := repo.Open(be, repo.Options{Logf: logf})
	if err != nil {
		return err
	}
	if err := fn(r); err != nil {
		return err
	}
	return r.Close()
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

func runLs(r *repo.Repository) error {
	ids := r.SessionIDs()
	sort.Strings(ids)
	for _, id := range ids {
		data, err := r.GetSession(id)
		if err != nil {
			return fmt.Errorf("session %q: %w", id, err)
		}
		fmt.Printf("%-32s %10d bytes\n", id, len(data))
	}
	if len(ids) == 0 {
		fmt.Println("(no sessions)")
	}
	return nil
}

func runStats(r *repo.Repository) error {
	s, err := r.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("sessions:       %d\n", s.Sessions)
	fmt.Printf("snapshots:      %d\n", s.Snapshots)
	fmt.Printf("packs:          %d\n", s.Packs)
	fmt.Printf("blobs:          %d (%d chunks, %d manifests)\n", s.Blobs, s.Chunks, s.Manifests)
	fmt.Printf("stored bytes:   %d\n", s.StoredBytes)
	fmt.Printf("live bytes:     %d\n", s.LiveBytes)
	fmt.Printf("dead bytes:     %d (reclaimable by gc)\n", s.DeadBytes)
	fmt.Printf("logical bytes:  %d\n", s.LogicalBytes)
	fmt.Printf("dedup factor:   %.2fx\n", s.DedupFactor())
	if s.DamagedPacks > 0 {
		fmt.Printf("damaged packs:  %d (quarantined; gc removes them)\n", s.DamagedPacks)
	}
	return nil
}

func runGCCmd(args []string) error {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	keepLast := fs.Int("keep-last", 1, "versions kept per session, head included (0 = no count limit)")
	maxAge := fs.Duration("max-age", 0, "drop retained versions older than this (0 = no age limit)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: aprofstore gc [-keep-last N] [-max-age D] DIR")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	if *keepLast < 0 {
		return fmt.Errorf("gc: -keep-last must be >= 0")
	}
	policy := repo.RetentionPolicy{KeepLast: *keepLast, MaxAge: *maxAge}
	return withRepo(fs.Arg(0), func(r *repo.Repository) error {
		stats, err := r.GCWithPolicy(policy)
		if err != nil {
			return err
		}
		fmt.Println(stats.String())
		return nil
	})
}

func runCheck(r *repo.Repository) error {
	rep := r.Check()
	fmt.Printf("checked %d packs, %d blobs, %d snapshots, %d sessions\n",
		rep.Packs, rep.Blobs, rep.Snapshots, rep.Sessions)
	for _, w := range rep.Warnings {
		fmt.Printf("warning: %s\n", w)
	}
	for _, e := range rep.Errors {
		fmt.Printf("error: %s\n", e)
	}
	if !rep.OK() {
		return fmt.Errorf("check failed: %d error(s)", len(rep.Errors))
	}
	fmt.Println("no errors")
	return nil
}
