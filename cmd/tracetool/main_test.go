package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aprof/internal/trace"
)

func writeSample(t *testing.T, dir string) string {
	t.Helper()
	b := trace.NewBuilder()
	t1 := b.Thread(1)
	t2 := b.Thread(2)
	t1.Call("main")
	t2.Call("worker")
	for i := 0; i < 10; i++ {
		t1.Write1(trace.Addr(i))
		t2.Read1(trace.Addr(i))
		t1.SysRead(100, 4)
	}
	t1.Call("inner")
	t1.Ret()
	t1.Ret()
	t2.Ret()
	tr := b.Trace()

	path := filepath.Join(dir, "sample.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteBinary(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStats(t *testing.T) {
	dir := t.TempDir()
	path := writeSample(t, dir)
	var buf bytes.Buffer
	if err := cmdStats([]string{path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"events:", "routines:  3", "threads:   2", "max depth: 2", "kernelToUser", "by thread:"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestCatAndConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := writeSample(t, dir)

	var text bytes.Buffer
	if err := cmdCat([]string{path}, &text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "routine 0 main") {
		t.Errorf("cat output missing routine header:\n%.200s", text.String())
	}

	// binary -> text -> binary keeps the trace identical.
	textPath := filepath.Join(dir, "sample.tr")
	if err := cmdConvert([]string{"-to", "text", path, textPath}); err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "sample2.bin")
	if err := cmdConvert([]string{"-to", "binary", textPath, binPath}); err != nil {
		t.Fatal(err)
	}
	a, err := readTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := readTrace(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("round trip changed event count: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("round trip changed event %d", i)
		}
	}
}

func TestValidateAndReinterleave(t *testing.T) {
	dir := t.TempDir()
	path := writeSample(t, dir)

	var buf bytes.Buffer
	if err := cmdValidate([]string{path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ok:") {
		t.Errorf("validate output = %q", buf.String())
	}

	out := filepath.Join(dir, "re.bin")
	if err := cmdReinterleave([]string{"-seed", "3", out, out}); err == nil {
		// Same in/out path is allowed but must still produce a valid trace;
		// the interesting check is below with distinct paths.
		_ = err
	}
	if err := cmdReinterleave([]string{"-seed", "3", path, out}); err != nil {
		t.Fatal(err)
	}
	re, err := readTrace(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Validate(); err != nil {
		t.Fatalf("reinterleaved trace invalid: %v", err)
	}
	orig, err := readTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	count := func(tr *trace.Trace) int {
		n := 0
		for _, ev := range tr.Events {
			if ev.Kind != trace.KindSwitchThread {
				n++
			}
		}
		return n
	}
	if count(orig) != count(re) {
		t.Errorf("reinterleave changed event count: %d vs %d", count(orig), count(re))
	}
}

func TestErrors(t *testing.T) {
	if err := cmdStats(nil, &bytes.Buffer{}); err == nil {
		t.Error("stats with no file accepted")
	}
	if err := cmdStats([]string{"/nonexistent/file"}, &bytes.Buffer{}); err == nil {
		t.Error("stats of missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad")
	os.WriteFile(bad, []byte("not a trace @@@"), 0o644)
	if err := cmdValidate([]string{bad}, &bytes.Buffer{}); err == nil {
		t.Error("validate of garbage accepted")
	}
	if err := cmdConvert([]string{"-to", "nonsense", bad, bad}); err == nil {
		t.Error("convert to unknown format accepted")
	}
}

func TestSlice(t *testing.T) {
	dir := t.TempDir()
	path := writeSample(t, dir)
	out := filepath.Join(dir, "slice.bin")

	// Thread slice.
	if err := cmdSlice([]string{"-threads", "1", path, out}); err != nil {
		t.Fatal(err)
	}
	tr, err := readTrace(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range tr.Events {
		if ev.Thread != 1 {
			t.Fatalf("thread %d survived -threads 1", ev.Thread)
		}
	}

	// Routine slice.
	if err := cmdSlice([]string{"-routine", "inner", path, out}); err != nil {
		t.Fatal(err)
	}
	tr, err = readTrace(out)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindCall {
			calls++
			if tr.Symbols.Name(ev.Routine) != "inner" {
				t.Fatalf("foreign routine in slice: %s", tr.Symbols.Name(ev.Routine))
			}
		}
	}
	if calls != 1 {
		t.Fatalf("slice has %d inner calls, want 1", calls)
	}

	// Window slice must stay valid.
	if err := cmdSlice([]string{"-from", "3", "-to", "20", path, out}); err != nil {
		t.Fatal(err)
	}
	tr, err = readTrace(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("window slice invalid: %v", err)
	}

	// Bad thread list.
	if err := cmdSlice([]string{"-threads", "x", path, out}); err == nil {
		t.Error("bad thread id accepted")
	}
}
