// Command tracetool inspects and manipulates saved execution traces.
//
// Usage:
//
//	tracetool stats trace.bin                 # event/thread/routine statistics
//	tracetool cat trace.bin                   # dump as text
//	tracetool convert -to text in.bin out.tr  # convert between formats
//	tracetool reinterleave -seed 7 in out     # schedule-perturbed copy
//	tracetool slice -routine scan in out      # sub-trace of one routine
//	tracetool validate trace.bin              # structural checks
//
// Formats are detected from the file contents (binary traces start with the
// "APT1" magic).
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"aprof/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "stats":
		err = cmdStats(args, os.Stdout)
	case "cat":
		err = cmdCat(args, os.Stdout)
	case "convert":
		err = cmdConvert(args)
	case "reinterleave":
		err = cmdReinterleave(args)
	case "slice":
		err = cmdSlice(args)
	case "validate":
		err = cmdValidate(args, os.Stdout)
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "tracetool: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tracetool stats FILE
  tracetool cat FILE
  tracetool convert [-to binary|binary2|text] IN OUT
  tracetool reinterleave [-seed N] [-window N] [-sync] IN OUT
  tracetool slice [-threads 1,2] [-routine NAME] [-from T] [-to T] IN OUT
  tracetool validate FILE`)
}

// readTrace loads a trace, sniffing the format.
func readTrace(path string) (*trace.Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(data, []byte("APT1")) || bytes.HasPrefix(data, []byte("APT2")) {
		return trace.ReadBinary(bytes.NewReader(data))
	}
	return trace.ReadText(bytes.NewReader(data))
}

func writeTrace(path, format string, tr *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	switch format {
	case "binary":
		err = trace.WriteBinary(w, tr)
	case "binary2":
		err = trace.WriteBinary2(w, tr)
	case "text":
		err = trace.WriteText(w, tr)
	default:
		return fmt.Errorf("unknown format %q (want binary, binary2, or text)", format)
	}
	if err != nil {
		return err
	}
	return w.Flush()
}

func cmdStats(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("stats: want exactly one trace file")
	}
	tr, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	return printStats(w, tr)
}

// printStats renders the statistics of a trace.
func printStats(w io.Writer, tr *trace.Trace) error {
	kinds := make(map[trace.Kind]int)
	perThread := make(map[trace.ThreadID]int)
	var cells uint64
	maxDepth := 0
	depth := make(map[trace.ThreadID]int)
	for i := range tr.Events {
		ev := &tr.Events[i]
		kinds[ev.Kind]++
		if ev.Kind != trace.KindSwitchThread {
			perThread[ev.Thread]++
		}
		if ev.IsMemory() {
			cells += uint64(ev.Size)
		}
		switch ev.Kind {
		case trace.KindCall:
			depth[ev.Thread]++
			if depth[ev.Thread] > maxDepth {
				maxDepth = depth[ev.Thread]
			}
		case trace.KindReturn:
			depth[ev.Thread]--
		}
	}
	fmt.Fprintf(w, "events:    %d\n", tr.Len())
	fmt.Fprintf(w, "routines:  %d\n", tr.Symbols.Len())
	fmt.Fprintf(w, "threads:   %d\n", len(perThread))
	fmt.Fprintf(w, "cells:     %d accessed (%d distinct)\n", cells, tr.MemoryFootprint())
	fmt.Fprintf(w, "max depth: %d\n", maxDepth)
	fmt.Fprintln(w, "by kind:")
	for k := trace.KindCall; k <= trace.KindRelease; k++ {
		if kinds[k] > 0 {
			fmt.Fprintf(w, "  %-14s %d\n", k.String(), kinds[k])
		}
	}
	ids := make([]trace.ThreadID, 0, len(perThread))
	for id := range perThread {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Fprintln(w, "by thread:")
	for _, id := range ids {
		fmt.Fprintf(w, "  t%-3d %d\n", id, perThread[id])
	}
	return nil
}

func cmdCat(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cat", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("cat: want exactly one trace file")
	}
	tr, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	return trace.WriteText(w, tr)
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	to := fs.String("to", "binary", "output format: binary, binary2 (checksummed APT2), or text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("convert: want IN and OUT files")
	}
	tr, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	return writeTrace(fs.Arg(1), *to, tr)
}

func cmdReinterleave(args []string) error {
	fs := flag.NewFlagSet("reinterleave", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "perturbation seed")
	window := fs.Int("window", 8, "perturbation window (events)")
	sync := fs.Bool("sync", true, "respect semaphore synchronization")
	format := fs.String("to", "binary", "output format: binary, binary2 (checksummed APT2), or text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("reinterleave: want IN and OUT files")
	}
	tr, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	var out *trace.Trace
	if *sync {
		out = trace.ReinterleaveSync(tr, *seed, *window)
	} else {
		out = trace.ReinterleaveWindow(tr, *seed, *window)
	}
	return writeTrace(fs.Arg(1), *format, out)
}

func cmdSlice(args []string) error {
	fs := flag.NewFlagSet("slice", flag.ContinueOnError)
	threads := fs.String("threads", "", "comma-separated thread ids to keep")
	routine := fs.String("routine", "", "keep only activations of this routine")
	from := fs.Uint64("from", 0, "window start time")
	to := fs.Uint64("to", math.MaxUint64, "window end time")
	format := fs.String("to-format", "binary", "output format: binary, binary2 (checksummed APT2), or text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("slice: want IN and OUT files")
	}
	tr, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	if *from > 0 || *to < math.MaxUint64 {
		tr = trace.TimeWindow(tr, *from, *to)
	}
	if *threads != "" {
		var keep []trace.ThreadID
		for _, part := range strings.Split(*threads, ",") {
			id, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
			if err != nil {
				return fmt.Errorf("slice: thread id %q: %w", part, err)
			}
			keep = append(keep, trace.ThreadID(id))
		}
		tr = trace.FilterThreads(tr, keep...)
	}
	if *routine != "" {
		tr = trace.FilterRoutine(tr, tr.Symbols, *routine)
	}
	return writeTrace(fs.Arg(1), *format, tr)
}

func cmdValidate(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("validate: want exactly one trace file")
	}
	tr, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(w, "ok: %d events, %d routines, %d threads\n",
		tr.Len(), tr.Symbols.Len(), len(tr.Threads()))
	return nil
}
