# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet lint race fuzz faults bench cover experiments examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-wide lint gate: gofmt must be clean and go vet must pass. Fails
# with the offending file list when any source file is unformatted.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Full suite under the race detector: the concurrent pipeline (profio
# streaming, RunConcurrent, MergeRunsParallel, experiment pool) must be
# data-race free.
race: vet
	$(GO) test -race ./...

# Short smoke run of every native fuzz target (seed corpora live in
# testdata/fuzz/). Lengthen FUZZTIME for a real fuzzing session.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/vm
	$(GO) test -run xxx -fuzz FuzzReadTrace -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run xxx -fuzz FuzzReadText -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run xxx -fuzz FuzzReadProfiles -fuzztime $(FUZZTIME) ./internal/profio

# Robustness suite: fault-injection seed sweeps, corrupt-frame recovery
# with exact loss accounting, and kill-at-every-batch checkpoint/resume
# determinism.
faults:
	$(GO) test ./internal/faultio/
	$(GO) test -run 'Fault|Retry|Resume|Kill|Lenient|Corrupt|Checkpoint' \
		./internal/trace ./internal/core ./internal/profio ./cmd/aprof

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Regenerate every table and figure of the paper into results/.
experiments:
	$(GO) run ./cmd/experiments -scale full -out results all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/producerconsumer
	$(GO) run ./examples/streaming
	$(GO) run ./examples/dbscan
	$(GO) run ./examples/contexts

clean:
	rm -f cover.out test_output.txt bench_output.txt
