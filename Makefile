# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet lint race fuzz faults shard-equivalence suppress-equivalence chaos chaos-cluster chaos-replica store-torture bench bench-baseline bench-all cover experiments examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-wide lint gate: gofmt must be clean and go vet must pass. Fails
# with the offending file list when any source file is unformatted.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Full suite under the race detector: the concurrent pipeline (profio
# streaming, RunConcurrent, MergeRunsParallel, experiment pool) must be
# data-race free.
race: vet
	$(GO) test -race ./...

# Short smoke run of every native fuzz target (seed corpora live in
# testdata/fuzz/). Lengthen FUZZTIME for a real fuzzing session.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/vm
	$(GO) test -run xxx -fuzz FuzzReadTrace -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run xxx -fuzz FuzzReadText -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run xxx -fuzz FuzzReadProfiles -fuzztime $(FUZZTIME) ./internal/profio
	$(GO) test -run xxx -fuzz FuzzProfileSharded -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run xxx -fuzz FuzzEffects -fuzztime $(FUZZTIME) ./internal/vm/analysis
	$(GO) test -run xxx -fuzz FuzzPackDecode -fuzztime $(FUZZTIME) ./internal/repo
	$(GO) test -run xxx -fuzz FuzzIndexDecode -fuzztime $(FUZZTIME) ./internal/repo

# Robustness suite: fault-injection seed sweeps, corrupt-frame recovery
# with exact loss accounting, and kill-at-every-batch checkpoint/resume
# determinism.
faults:
	$(GO) test ./internal/faultio/
	$(GO) test -run 'Fault|Retry|Resume|Kill|Lenient|Corrupt|Checkpoint' \
		./internal/trace ./internal/core ./internal/profio ./cmd/aprof

# Sharded multi-core engine vs the sequential profiler: deep-equal and
# byte-identity differential sweeps, cross-mode checkpoint resume, and the
# shard fuzz corpus — under the race detector (the engine is the most
# goroutine-dense code in the repo).
shard-equivalence:
	$(GO) test -race -count=1 -run 'Shard' ./internal/core ./internal/profio

# Instrumentation redundancy suppression vs the full per-instruction
# tracer: the differential harness proves suppressed traces produce
# byte-identical profiler output (reports, plots, stream checkpoints)
# across the corpora, the VM workloads, and seeded random programs, plus
# the opcode-table cross-checks — race-enabled and time-bounded.
suppress-equivalence:
	$(GO) test -race -timeout 300s -count=1 \
		-run 'TestSuppress|TestOpTable|TestEffects' \
		./internal/vm/analysis ./internal/workloads

# Network chaos suite, under the race detector with a hard timeout (a
# drain/backpressure deadlock must fail the run, not hang it): chaos-conn
# reconnect sweeps, randomized daemon kills with checkpoint resume,
# graceful-drain handover, overload shedding, torn-checkpoint sweeps, and
# the daemon/client end-to-end binary test.
chaos:
	$(GO) test -race -timeout 300s -count=1 \
		./internal/faultio ./internal/server/... ./cmd/aprofd
	$(GO) test -race -timeout 300s -count=1 \
		-run 'Torn|CorruptCheckpoint|TrailingGarbage|Interrupt' \
		./internal/profio ./cmd/aprof

# Cluster chaos suite, bounded at 90s under the race detector: node kills
# at every batch index with ring-successor failover, seed-swept link chaos
# and half-open links, busy-shed rerouting, health-based routing around
# dead nodes, the client failover leak audit, and the three-binary cluster
# end-to-end test.
chaos-cluster:
	$(GO) test -race -timeout 90s -count=1 ./internal/cluster
	$(GO) test -race -timeout 90s -count=1 -run 'LeakAudit' ./internal/server/client
	$(GO) test -race -timeout 90s -count=1 -run 'TestClusterEndToEnd' ./cmd/aprofd

# Replicated-cluster chaos suite, bounded at 90s under the race detector:
# the no-shared-disk counterpart of chaos-cluster. Node kills at every
# batch index WITH full data-dir wipes (checkpoint, replica store, and
# profile store all lost) recovered purely from the APRR replica set,
# torn replication-link sweeps, partition-interrupted store sync with
# idempotent re-sync, the replication leak audit, and the APRR wire /
# replica-store unit sweeps.
chaos-replica:
	$(GO) test -race -timeout 90s -count=1 \
		-run 'TestReplica|TestCkptStore|TestNewNode|TestPeerBackend|TestRoundTrip' \
		./internal/replica
	$(GO) test -race -timeout 90s -count=1 ./internal/replica/wire
	$(GO) test -race -timeout 90s -count=1 -run 'TestSync|TestRetention' ./internal/repo

# Profile-repository torture suite, bounded at 90s under the race
# detector: decoder fuzz smoke over the committed corpora, the
# kill-at-every-step crash-consistency sweeps (every backend op, every
# crash mode, plus the GC-focused sweep), the random-ops differential
# test against the model store, the dedup-economics assertion, and the
# killed-write result-file regression.
store-torture:
	$(GO) test -race -timeout 90s -count=1 ./internal/repo/... ./internal/faultio
	$(GO) test -race -timeout 90s -count=1 -run 'TestStore' ./internal/server ./cmd/aprofd

# Benchmark-regression harness: run the hot-path benchmarks (core, shadow,
# profio, obs, vm) with -benchmem and diff ns/op against the committed
# BENCH_core.json baseline (±15%). Reports only — benchdiff exits 0 even on
# regressions (add -exit-code for a hard local gate).
BENCH_PKGS = ./internal/core ./internal/shadow ./internal/profio ./internal/obs ./internal/vm
bench:
	$(GO) test -run xxx -bench . -benchmem $(BENCH_PKGS) | tee bench_output.txt
	$(GO) run ./internal/tools/benchdiff bench_output.txt

# Refresh the baseline after an intentional perf change (idle machine!).
bench-baseline:
	$(GO) test -run xxx -bench . -benchmem $(BENCH_PKGS) | tee bench_output.txt
	$(GO) run ./internal/tools/benchdiff -update bench_output.txt

# Every benchmark in the repo, including the end-to-end experiment ones.
bench-all:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Regenerate every table and figure of the paper into results/.
experiments:
	$(GO) run ./cmd/experiments -scale full -out results all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/producerconsumer
	$(GO) run ./examples/streaming
	$(GO) run ./examples/dbscan
	$(GO) run ./examples/contexts

clean:
	rm -f cover.out test_output.txt bench_output.txt
