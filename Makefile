# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet bench cover experiments examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Regenerate every table and figure of the paper into results/.
experiments:
	$(GO) run ./cmd/experiments -scale full -out results all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/producerconsumer
	$(GO) run ./examples/streaming
	$(GO) run ./examples/dbscan
	$(GO) run ./examples/contexts

clean:
	rm -f cover.out test_output.txt bench_output.txt
