package aprof

import (
	"strings"
	"testing"
)

func TestFacadeTraceProfiling(t *testing.T) {
	b := NewTraceBuilder()
	t1 := b.Thread(1)
	t2 := b.Thread(2)
	t1.Call("consumer")
	t2.Call("producer")
	for i := 0; i < 10; i++ {
		t2.Write1(7)
		t1.Read1(7)
	}
	t1.Ret()
	t2.Ret()
	ps, err := ProfileTrace(b.Trace(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := ps.Routine("consumer")
	if c.SumRMS != 1 || c.SumDRMS != 10 {
		t.Errorf("consumer rms=%d drms=%d, want 1 and 10", c.SumRMS, c.SumDRMS)
	}
}

func TestFacadeConfigs(t *testing.T) {
	build := func() *Trace {
		b := NewTraceBuilder()
		t1 := b.Thread(1)
		t2 := b.Thread(2)
		t1.Call("f")
		t1.SysRead(1, 1)
		t1.Read1(1)
		t2.Call("g")
		t2.Write1(2)
		t2.Ret()
		t1.Read1(2)
		t1.Ret()
		return b.Trace()
	}
	// Both reads touch never-before-accessed cells, so every configuration
	// counts them (drms = rms = 2); what changes is the attribution: the
	// read of cell 1 follows a kernel fill, the read of cell 2 a foreign
	// thread write.
	cases := []struct {
		name                string
		cfg                 Config
		wantExt, wantThread uint64
	}{
		{"default", DefaultConfig(), 1, 1},
		{"external", ExternalOnlyConfig(), 1, 0},
		{"rms", RMSOnlyConfig(), 0, 0},
	}
	for _, tc := range cases {
		ps, err := ProfileTrace(build(), tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		f := ps.Routine("f")
		if f.SumDRMS != 2 || f.SumRMS != 2 {
			t.Errorf("%s: drms = %d rms = %d, want 2 and 2", tc.name, f.SumDRMS, f.SumRMS)
		}
		if f.InducedExternal != tc.wantExt || f.InducedThread != tc.wantThread {
			t.Errorf("%s: induced = (ext %d, thread %d), want (%d, %d)",
				tc.name, f.InducedExternal, f.InducedThread, tc.wantExt, tc.wantThread)
		}
	}
}

func TestFacadeProfileProgram(t *testing.T) {
	src := `
fn touch(a, n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		s = s + a[i];
	}
	return s;
}
fn main() {
	var a = alloc(100);
	for (var i = 0; i < 100; i = i + 1) {
		a[i] = i;
	}
	print(touch(a, 100));
}`
	ps, res, err := ProfileProgram(src, VMOptions{}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != "4950" {
		t.Errorf("output = %v", res.Output)
	}
	touch := ps.Routine("touch")
	if touch == nil || touch.SumRMS != 100 {
		t.Errorf("touch rms = %v, want 100", touch)
	}
}

func TestFitCost(t *testing.T) {
	b := NewTraceBuilder()
	tb := b.Thread(1)
	tb.Call("main")
	for n := 10; n <= 100; n += 10 {
		tb.Call("linear_scan")
		tb.Read(Addr(1000), uint32(n))
		tb.Work(uint64(5 * n))
		tb.Ret()
	}
	tb.Ret()
	ps, err := ProfileTrace(b.Trace(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	model, err := FitCost(ps, "linear_scan", DRMS)
	if err != nil {
		t.Fatal(err)
	}
	if model.ModelName != "n" {
		t.Errorf("model = %s, want n", model.ModelName)
	}
	if model.Exponent < 0.9 || model.Exponent > 1.1 {
		t.Errorf("exponent = %.2f, want ~1", model.Exponent)
	}
	if _, err := FitCost(ps, "nonexistent", DRMS); err == nil {
		t.Error("FitCost accepted unknown routine")
	}
}

func TestReport(t *testing.T) {
	b := NewTraceBuilder()
	t1 := b.Thread(1)
	t1.Call("main")
	for n := 5; n <= 50; n += 5 {
		t1.Call("worker")
		t1.SysRead(100, uint32(n))
		t1.Read(100, uint32(n))
		t1.Work(uint64(n * 2))
		t1.Ret()
	}
	t1.Ret()
	ps, err := ProfileTrace(b.Trace(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := Report(ps, ReportOptions{Fit: true, Plots: true})
	for _, want := range []string{"routine", "worker", "main", "fit worker", "plot worker", "dynamic input volume"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	top := Report(ps, ReportOptions{TopN: 1})
	if strings.Contains(strings.SplitN(top, "\nfit", 2)[0], "worker\n") && strings.Contains(top, "\nworker") {
		t.Errorf("TopN=1 should keep only the most expensive routine:\n%s", top)
	}
}

func TestComputeMetricsAndSummary(t *testing.T) {
	b := NewTraceBuilder()
	t1 := b.Thread(1)
	t1.Call("r")
	t1.SysRead(5, 2)
	t1.Read(5, 2)
	t1.Ret()
	ps, err := ProfileTrace(b.Trace(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ms := ComputeMetrics(ps)
	if len(ms) != 1 || ms[0].Name != "r" {
		t.Fatalf("metrics = %+v", ms)
	}
	if ms[0].ExternalInputPct != 100 {
		t.Errorf("external input = %.1f, want 100", ms[0].ExternalInputPct)
	}
	s := Summarize(ps)
	if s.InducedReads != 2 {
		t.Errorf("induced reads = %d, want 2", s.InducedReads)
	}
}
