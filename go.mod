module aprof

go 1.22
